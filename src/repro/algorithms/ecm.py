"""Edge-centric model (ECM) engine (Sec. VII-H).

Edge-centric accelerators (ForeGraph, Fabgraph, MOMSes) stream the edge
list in 2-D grid blocks: the vertex range is cut into P source tiles and Q
destination tiles, and block (p, q) holds the edges from tile p to tile q.
Within a block, source properties are read randomly within the source
range and destination temporaries are updated randomly within the
destination range; both ranges are small enough to cache on chip.

The engine here mirrors :class:`~repro.algorithms.vcm.VertexCentricEngine`:
functional NumPy updates plus per-block access traces.  Edge-centric
processing streams *all* edges every iteration (it cannot skip inactive
sources without extra indexing), which is the model's defining cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.algorithms.vcm import AlgorithmSpec, REDUCE_OPS
from repro.utils.units import ceil_div


@dataclass
class BlockTrace:
    """Access record for one grid block (src tile p -> dst tile q)."""

    src_tile: int
    dst_tile: int
    src_lo: int
    src_hi: int
    dst_lo: int
    dst_hi: int
    edge_src: np.ndarray = field(repr=False)
    edge_dst: np.ndarray = field(repr=False)
    touched_dst: np.ndarray = field(repr=False)

    @property
    def num_edges(self) -> int:
        return self.edge_src.size


@dataclass
class ECIterationTrace:
    """Access record for one edge-centric iteration."""

    iteration: int
    num_src_tiles: int
    num_dst_tiles: int
    blocks: list[BlockTrace]
    #: per-dst-tile apply destinations (all vertices when applies_all)
    apply_dst: list[np.ndarray]
    changed: int

    @property
    def num_edges(self) -> int:
        return sum(b.num_edges for b in self.blocks)


class EdgeCentricEngine:
    """Grid-partitioned edge-centric execution of an algorithm spec."""

    def __init__(
        self,
        spec: AlgorithmSpec,
        src_tile_width: int,
        dst_tile_width: int,
    ) -> None:
        if src_tile_width <= 0 or dst_tile_width <= 0:
            raise ValueError("tile widths must be positive")
        self.spec = spec
        self.graph = spec.graph
        n = self.graph.num_vertices
        self.src_tile_width = min(src_tile_width, max(1, n))
        self.dst_tile_width = min(dst_tile_width, max(1, n))
        self.num_src_tiles = ceil_div(max(1, n), self.src_tile_width)
        self.num_dst_tiles = ceil_div(max(1, n), self.dst_tile_width)
        self.prop = spec.init_prop.copy()
        self.iteration = 0
        self._reduce_ufunc, self._identity = REDUCE_OPS[spec.reduce_name]
        self._blocks = self._build_grid()
        self._converged = False

    def _build_grid(self) -> list[tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]:
        src, dst, weight = self.graph.edge_array()
        p = src // self.src_tile_width
        q = dst // self.dst_tile_width
        # Column-major (destination-tile outer) ordering: GridGraph streams
        # one destination tile's column of blocks before moving on.
        key = q * self.num_src_tiles + p
        order = np.argsort(key, kind="stable")
        src, dst, weight, key = src[order], dst[order], weight[order], key[order]
        bounds = np.searchsorted(
            key, np.arange(self.num_src_tiles * self.num_dst_tiles + 1)
        )
        blocks = []
        for b in range(self.num_src_tiles * self.num_dst_tiles):
            lo, hi = bounds[b], bounds[b + 1]
            if lo == hi:
                continue
            q_idx, p_idx = divmod(b, self.num_src_tiles)
            blocks.append((p_idx, q_idx, src[lo:hi], dst[lo:hi], weight[lo:hi]))
        return blocks

    @property
    def converged(self) -> bool:
        return self._converged

    def step(self) -> ECIterationTrace:
        """Run one synchronous edge-centric iteration."""
        spec = self.spec
        n = self.graph.num_vertices
        prop_old = self.prop
        vtemp = np.full(n, self._identity, dtype=np.float64)
        blocks: list[BlockTrace] = []
        for p_idx, q_idx, e_src, e_dst, e_w in self._blocks:
            contributions = spec.process(
                e_w.astype(np.float64), prop_old[e_src], e_src
            )
            self._reduce_ufunc.at(vtemp, e_dst, contributions)
            blocks.append(
                BlockTrace(
                    src_tile=p_idx,
                    dst_tile=q_idx,
                    src_lo=p_idx * self.src_tile_width,
                    src_hi=min((p_idx + 1) * self.src_tile_width, n),
                    dst_lo=q_idx * self.dst_tile_width,
                    dst_hi=min((q_idx + 1) * self.dst_tile_width, n),
                    edge_src=e_src,
                    edge_dst=e_dst,
                    touched_dst=np.unique(e_dst),
                )
            )

        apply_lists: list[np.ndarray] = []
        changed_total = 0
        prop_new = prop_old.copy()
        for q_idx in range(self.num_dst_tiles):
            lo = q_idx * self.dst_tile_width
            hi = min((q_idx + 1) * self.dst_tile_width, n)
            if spec.applies_all_vertices:
                apply_dst = np.arange(lo, hi, dtype=np.int64)
            else:
                touched = [b.touched_dst for b in blocks if b.dst_tile == q_idx]
                apply_dst = (
                    np.unique(np.concatenate(touched)) if touched
                    else np.empty(0, dtype=np.int64)
                )
            if apply_dst.size:
                old_vals = prop_old[apply_dst]
                new_vals = spec.apply(old_vals, vtemp[apply_dst], apply_dst)
                if spec.convergence_tol > 0.0:
                    changed = np.abs(new_vals - old_vals) > spec.convergence_tol
                else:
                    changed = new_vals != old_vals
                changed_total += int(np.count_nonzero(changed))
                prop_new[apply_dst] = new_vals
            apply_lists.append(apply_dst)

        trace = ECIterationTrace(
            iteration=self.iteration,
            num_src_tiles=self.num_src_tiles,
            num_dst_tiles=self.num_dst_tiles,
            blocks=blocks,
            apply_dst=apply_lists,
            changed=changed_total,
        )
        self.prop = prop_new
        self._converged = changed_total == 0
        self.iteration += 1
        return trace

    def run_iter(self, max_iterations: int = 40) -> Iterator[ECIterationTrace]:
        """Lazily yield traces until convergence or the iteration cap."""
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        for _ in range(max_iterations):
            if self._converged:
                return
            yield self.step()
