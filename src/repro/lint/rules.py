"""The repro-lint rule set: the repo's correctness contracts as AST checks.

Each rule codifies one invariant that the hypothesis suites defend
dynamically (docs/INVARIANTS.md maps rule -> contract -> suite):

- RL001 digest-determinism: digest/canonicalization code must be
  bit-reproducible across processes and interpreter runs.
- RL002 atomic-write discipline: store/checkpoint writes must stage to
  a tmp path and commit with ``os.replace`` (first-writer-wins).
- RL003 spawn-safety: sweep-worker entry points must stay picklable
  under the spawn start method.
- RL004 memmap hygiene: chunked loops over disk-backed arrays must not
  materialize hidden copies.
- RL005 SoA dtype discipline: batched-engine columns are explicit-dtype
  constructions, never bare float64 defaults.
- RL006 no scalar loops: ``*/batched.py`` modules must not walk
  per-request data in Python.

Scope patterns in :data:`DEFAULT_SCOPES` name the files where each
contract actually holds; the tests inject synthetic configs instead.
"""

from __future__ import annotations

import ast
import fnmatch
import re

from .core import (
    FileContext,
    Insertion,
    LintConfig,
    Rule,
    Violation,
    dotted_name,
)

# ---------------------------------------------------------------------------
# RL001: digest determinism
# ---------------------------------------------------------------------------

#: call prefixes that read global mutable / wall-clock state
_RL001_BANNED_PREFIXES = (
    "time.",
    "random.",
    "np.random.",
    "numpy.random.",
    "secrets.",
    "uuid.",
)
_RL001_BANNED_EXACT = frozenset({
    "os.urandom",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
})
#: bare builtins whose value depends on the interpreter run
_RL001_BANNED_BARE = frozenset({"hash", "id", "globals", "vars"})

_UNORDERED_METHODS = frozenset({"items", "keys", "values"})


def _is_unordered_iter(node: ast.expr) -> str | None:
    """Why iterating ``node`` is unordered, or None when it is fine."""
    if isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _UNORDERED_METHODS):
            return f".{func.attr}() iteration order"
        name = dotted_name(func)
        if name in ("set", "frozenset"):
            return f"{name}() iteration order"
    if isinstance(node, ast.Set):
        return "set-literal iteration order"
    if isinstance(node, ast.SetComp):
        return "set-comprehension iteration order"
    return None


def _sorted_wrap_fix(node: ast.expr) -> tuple[Insertion, ...] | None:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return (
        Insertion(node.lineno, node.col_offset, "sorted("),
        Insertion(end_line, end_col, ")"),
    )


class DigestDeterminism(Rule):
    code = "RL001"
    name = "digest-determinism"
    description = (
        "digest/canonicalization code must not read global mutable "
        "state (time/random/uuid), iterate sets or dict views "
        "unsorted, or hash repr() output without a justified "
        "suppression"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        assert ctx.tree is not None
        name_re = re.compile(config.digest_name_re)
        extras: set[str] = set()
        for pattern, names in config.digest_extra_functions.items():
            if fnmatch.fnmatch(ctx.rel_path, pattern):
                extras.update(names)

        out: list[Violation] = []
        seen: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (name_re.search(node.name) or node.name in extras):
                continue
            self._check_function(ctx, node, out, seen)
        return out

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.AST,
        out: list[Violation],
        seen: set[int],
    ) -> None:
        # a genexp/comprehension directly inside sorted() is sanctioned:
        # the wrapper discards the unordered iteration order anyway
        sanctioned: set[int] = set()
        for node in ast.walk(func):
            if (isinstance(node, ast.Call)
                    and dotted_name(node.func) == "sorted"):
                for arg in node.args:
                    sanctioned.add(id(arg))
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp)):
                        sanctioned.add(id(arg.generators[0].iter))

        for node in ast.walk(func):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, ast.Call):
                self._check_call(ctx, node, out)
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if id(it) in sanctioned:
                    continue
                why = _is_unordered_iter(it)
                if why is not None:
                    out.append(ctx.violation(
                        self.code, it,
                        f"{why} is not deterministic in digest scope; "
                        "wrap the iterable in sorted(...)",
                        fix=_sorted_wrap_fix(it),
                    ))

    def _check_call(
        self, ctx: FileContext, node: ast.Call, out: list[Violation]
    ) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        if name == "repr" and isinstance(node.func, ast.Name):
            out.append(ctx.violation(
                self.code, node,
                "repr() output feeds a digest; only canonical for "
                "primitives -- justify with a suppression or "
                "canonicalize explicitly",
            ))
            return
        banned = (
            name in _RL001_BANNED_EXACT
            or (isinstance(node.func, ast.Name)
                and name in _RL001_BANNED_BARE)
            or any(name.startswith(p) for p in _RL001_BANNED_PREFIXES)
        )
        if banned:
            out.append(ctx.violation(
                self.code, node,
                f"call to {name}() reads global mutable state; digest "
                "inputs must be bit-reproducible across runs",
            ))


# ---------------------------------------------------------------------------
# RL002: atomic-write discipline
# ---------------------------------------------------------------------------

_TEMPFILE_FACTORIES = frozenset({
    "mkdtemp", "mkstemp", "TemporaryDirectory", "NamedTemporaryFile",
    "TemporaryFile",
})


def _last_part(name: str | None) -> str:
    return (name or "").rsplit(".", 1)[-1]


class AtomicWrites(Rule):
    code = "RL002"
    name = "atomic-write-discipline"
    description = (
        "writes under store/checkpoint roots must stage to a tmp path "
        "and commit via os.replace (first-writer-wins); direct writes "
        "to final paths race with concurrent workers"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        assert ctx.tree is not None
        safe_re = re.compile(config.safe_target_re, re.IGNORECASE)
        safe_names = self._collect_safe_names(ctx.tree, safe_re)
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_call(ctx, node, safe_re, safe_names, out)
        return out

    # -- safety of a target expression ---------------------------------
    def _is_safe(
        self,
        target: ast.expr,
        safe_re: re.Pattern[str],
        safe_names: set[str],
    ) -> bool:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                if node.id in safe_names or safe_re.search(node.id):
                    return True
            elif isinstance(node, ast.Attribute):
                if safe_re.search(node.attr):
                    return True
            elif isinstance(node, ast.Constant):
                if (isinstance(node.value, str)
                        and safe_re.search(node.value)):
                    return True
        return False

    def _collect_safe_names(
        self, tree: ast.Module, safe_re: re.Pattern[str]
    ) -> set[str]:
        safe: set[str] = set()
        # fixpoint over assignment chains (x = tmpdir; y = x / "part")
        for _ in range(3):
            grew = False
            for node in ast.walk(tree):
                name: str | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    name, value = node.targets[0].id, node.value
                elif (isinstance(node, ast.AnnAssign)
                        and isinstance(node.target, ast.Name)):
                    name, value = node.target.id, node.value
                elif isinstance(node, ast.NamedExpr) \
                        and isinstance(node.target, ast.Name):
                    name, value = node.target.id, node.value
                elif isinstance(node, ast.withitem) \
                        and isinstance(node.optional_vars, ast.Name):
                    name = node.optional_vars.id
                    expr = node.context_expr
                    if isinstance(expr, ast.Call):
                        fn = _last_part(dotted_name(expr.func))
                        if fn == "open" and expr.args:
                            # `with open(t, "w") as f`: f inherits t's
                            # safety (the open call is checked separately)
                            value = expr.args[0]
                        elif fn in _TEMPFILE_FACTORIES:
                            if name not in safe:
                                safe.add(name)
                                grew = True
                            continue
                if name is None or value is None or name in safe:
                    continue
                is_safe = self._is_safe(value, safe_re, safe)
                if isinstance(value, ast.Call):
                    fn = _last_part(dotted_name(value.func))
                    if fn in _TEMPFILE_FACTORIES:
                        is_safe = True
                if is_safe:
                    safe.add(name)
                    grew = True
            if not grew:
                break
        return safe

    # -- write-site detection ------------------------------------------
    def _check_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        safe_re: re.Pattern[str],
        safe_names: set[str],
        out: list[Violation],
    ) -> None:
        name = dotted_name(node.func)
        last = _last_part(name)
        target: ast.expr | None = None
        what = None

        if last == "open" and not isinstance(node.func, ast.Attribute) \
                and node.args:
            mode = self._mode_arg(node, position=1)
            if mode is _NON_LITERAL or (
                    mode and any(ch in mode for ch in "wax+")):
                target, what = node.args[0], "open(..., write mode)"
        elif isinstance(node.func, ast.Attribute) and last == "open":
            mode = self._mode_arg(node, position=0)
            if mode is not None and mode is not _NON_LITERAL \
                    and any(ch in mode for ch in "wax+"):
                target, what = node.func.value, ".open(write mode)"
        elif name in ("np.save", "numpy.save", "np.savez", "numpy.savez",
                      "np.savez_compressed", "numpy.savez_compressed") \
                and node.args:
            target, what = node.args[0], last
        elif last == "open_memmap":
            mode = None
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            if mode is not None and any(ch in mode for ch in "wx") \
                    and node.args:
                target, what = node.args[0], "open_memmap(mode='w+')"
        elif isinstance(node.func, ast.Attribute) \
                and last in ("write_text", "write_bytes"):
            target, what = node.func.value, f".{last}()"
        elif isinstance(node.func, ast.Attribute) and last == "tofile" \
                and node.args:
            target, what = node.args[0], ".tofile()"
        elif name == "json.dump" and len(node.args) >= 2:
            target, what = node.args[1], "json.dump()"

        if target is None:
            return
        if self._is_safe(target, safe_re, safe_names):
            return
        out.append(ctx.violation(
            self.code, node,
            f"{what} targets a non-staging path; write to a tmp "
            "sibling and commit with os.replace",
        ))

    @staticmethod
    def _mode_arg(node: ast.Call, position: int) -> object:
        for kw in node.keywords:
            if kw.arg == "mode":
                if isinstance(kw.value, ast.Constant):
                    return str(kw.value.value)
                return _NON_LITERAL
        if len(node.args) > position:
            arg = node.args[position]
            if isinstance(arg, ast.Constant):
                return str(arg.value)
            return _NON_LITERAL
        return None


_NON_LITERAL = object()


# ---------------------------------------------------------------------------
# RL003: spawn safety
# ---------------------------------------------------------------------------

_SUBMIT_LIKE = frozenset({
    "submit", "map", "starmap", "imap", "imap_unordered", "apply",
    "apply_async", "map_async", "Process", "Pool", "ProcessPoolExecutor",
})
_CALLABLE_KWARGS = frozenset({"target", "initializer", "func"})
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


class SpawnSafety(Rule):
    code = "RL003"
    name = "spawn-safety"
    description = (
        "sweep workers use the spawn start method: worker entry points "
        "and defaults must be module-level picklable objects (no "
        "lambdas, no fork-only contexts, no mutable defaults)"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        assert ctx.tree is not None
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                args = node.args
                for default in list(args.defaults) + [
                        d for d in args.kw_defaults if d is not None]:
                    bad = None
                    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                        bad = "mutable literal"
                    elif isinstance(default, ast.Lambda):
                        bad = "lambda"
                    elif isinstance(default, ast.Call) and \
                            dotted_name(default.func) in _MUTABLE_FACTORIES:
                        bad = f"{dotted_name(default.func)}() call"
                    if bad:
                        out.append(ctx.violation(
                            self.code, default,
                            f"{bad} as a parameter default is shared "
                            "mutable state and breaks spawn pickling; "
                            "default to None and build inside",
                        ))
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            last = _last_part(name)
            if last in ("get_context", "set_start_method"):
                method = node.args[0] if node.args else None
                if not (isinstance(method, ast.Constant)
                        and method.value == "spawn"):
                    out.append(ctx.violation(
                        self.code, node,
                        f"{last}() must request the 'spawn' start method "
                        "explicitly (fork inherits unpicklable state)",
                    ))
            elif name in ("multiprocessing.Pool", "mp.Pool",
                          "multiprocessing.Process", "mp.Process"):
                out.append(ctx.violation(
                    self.code, node,
                    f"direct {name}() uses the platform-default start "
                    "method; go through get_context('spawn')",
                ))
            if last in _SUBMIT_LIKE:
                for arg in node.args:
                    if isinstance(arg, ast.Lambda):
                        out.append(ctx.violation(
                            self.code, arg,
                            f"lambda passed to {last}() cannot be "
                            "pickled by spawn workers; use a "
                            "module-level function",
                        ))
            for kw in node.keywords:
                if kw.arg in _CALLABLE_KWARGS \
                        and isinstance(kw.value, ast.Lambda):
                    out.append(ctx.violation(
                        self.code, kw.value,
                        f"lambda as {kw.arg}= cannot be pickled by "
                        "spawn workers; use a module-level function",
                    ))
        return out


# ---------------------------------------------------------------------------
# RL004: memmap hygiene
# ---------------------------------------------------------------------------

_COPYING_FUNCS = frozenset({
    "np.array", "numpy.array", "np.copy", "numpy.copy",
    "np.ascontiguousarray", "numpy.ascontiguousarray",
})


class MemmapHygiene(Rule):
    code = "RL004"
    name = "memmap-hygiene"
    description = (
        "chunked loops over memmap-backed tiles must not materialize "
        "hidden copies (np.array/np.copy/.copy()/ascontiguousarray); "
        "a deliberate bounded copy needs a justified suppression"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        assert ctx.tree is not None
        out: list[Violation] = []
        seen: set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if id(node) in seen or not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                what: str | None = None
                if name in _COPYING_FUNCS:
                    what = f"{name}(...)"
                elif (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "copy"
                        and not node.args and not node.keywords
                        and dotted_name(node.func.value) != "copy"):
                    what = ".copy()"
                if what is None:
                    continue
                seen.add(id(node))
                out.append(ctx.violation(
                    self.code, node,
                    f"{what} inside a chunked loop materializes a copy "
                    "of (possibly memmap-backed) data per iteration; "
                    "hoist it or justify with a suppression",
                ))
        return out


# ---------------------------------------------------------------------------
# RL005: SoA dtype discipline
# ---------------------------------------------------------------------------

_DTYPE_CTORS = frozenset({"zeros", "ones", "empty", "full", "arange"})
_DTYPE_FIXABLE = frozenset({"zeros", "ones", "empty"})


class SoADtypeDiscipline(Rule):
    code = "RL005"
    name = "soa-dtype-discipline"
    description = (
        "batched-engine column/floor arrays must carry an explicit "
        "dtype: bare np.zeros(n) float64 defaults silently upcast "
        "int64 segment math (reduceat/bincount paths)"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        assert ctx.tree is not None
        out: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            prefix, _, ctor = name.rpartition(".")
            if prefix not in ("np", "numpy") or ctor not in _DTYPE_CTORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            fix: tuple[Insertion, ...] | None = None
            end_line = getattr(node, "end_lineno", None)
            end_col = getattr(node, "end_col_offset", None)
            if (ctor in _DTYPE_FIXABLE and end_line is not None
                    and end_col is not None and not any(
                        kw.arg is None for kw in node.keywords)):
                # make the float64 default explicit (behavior-preserving;
                # a wrong dtype then fails review by being visible)
                fix = (Insertion(end_line, end_col - 1,
                                 f", dtype={prefix}.float64"),)
            out.append(ctx.violation(
                self.code, node,
                f"{name}() without an explicit dtype defaults to "
                "float64; SoA columns must pin their dtype",
                fix=fix,
            ))
        return out


# ---------------------------------------------------------------------------
# RL006: no scalar loops in batched modules
# ---------------------------------------------------------------------------

def _structural_iter(node: ast.expr) -> bool:
    """True when iterating ``node`` walks structure, not per-request data.

    Structure means literals, ALL_CAPS schema constants, or thin
    wrappers (zip/enumerate/sorted/...) over those; ``range()`` with
    literal int bounds is a fixed-size setup loop.
    """
    if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict,
                         ast.Constant)):
        return True
    if isinstance(node, ast.Name):
        return node.id.strip("_").isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.strip("_").isupper()
    if isinstance(node, ast.Starred):
        return _structural_iter(node.value)
    if isinstance(node, ast.Call):
        last = _last_part(dotted_name(node.func))
        if last == "zip":
            return any(_structural_iter(a) for a in node.args)
        if last in ("enumerate", "sorted", "reversed", "tuple", "list"):
            return bool(node.args) and _structural_iter(node.args[0])
        if last == "range":
            return bool(node.args) and all(
                isinstance(a, ast.Constant) and isinstance(a.value, int)
                for a in node.args
            )
        if last in _UNORDERED_METHODS and isinstance(node.func,
                                                     ast.Attribute):
            return _structural_iter(node.func.value)
    return False


class NoScalarLoops(Rule):
    code = "RL006"
    name = "no-scalar-loops"
    description = (
        "batched modules must not iterate per-request/per-op data in "
        "Python; loops are only allowed over structure (schema "
        "constants, literals) or in allowlisted setup functions"
    )

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        assert ctx.tree is not None
        out: list[Violation] = []
        self._walk(ctx, ctx.tree, None, config, out)
        return out

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        func_name: str | None,
        config: LintConfig,
        out: list[Violation],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            inner = func_name
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = child.name
            elif func_name not in config.loop_setup_functions:
                if isinstance(child, (ast.For, ast.AsyncFor)):
                    if not _structural_iter(child.iter):
                        out.append(ctx.violation(
                            self.code, child,
                            "scalar Python loop over non-structural "
                            "iterable in a batched module; vectorize "
                            "or justify with a suppression",
                        ))
                elif isinstance(child, ast.While):
                    out.append(ctx.violation(
                        self.code, child,
                        "while-loop in a batched module is scalar "
                        "control flow; vectorize or justify with a "
                        "suppression",
                    ))
            self._walk(ctx, child, inner, config, out)


# ---------------------------------------------------------------------------
# Default configuration: where each contract holds in this repo
# ---------------------------------------------------------------------------

DEFAULT_SCOPES: dict[str, tuple[str, ...]] = {
    # digest/canonicalization machinery: cell digests, replay memo keys,
    # tile-store content digests, cache snapshot hooks
    "RL001": (
        "src/repro/experiments/runner.py",
        "src/repro/experiments/parallel.py",
        "src/repro/cache/batched.py",
        "src/repro/cache/base.py",
        "src/repro/core/memory_path.py",
        "src/repro/graph/tilestore.py",
    ),
    # first-writer-wins stores and checkpoint roots
    "RL002": (
        "src/repro/graph/tilestore.py",
        "src/repro/graph/graphio.py",
        "src/repro/experiments/parallel.py",
    ),
    # CellSpec-reachable code shipped to spawn workers
    "RL003": (
        "src/repro/experiments/runner.py",
        "src/repro/experiments/parallel.py",
    ),
    # chunked paths over memmap-backed tiles/CSR columns
    "RL004": (
        "src/repro/graph/tilestore.py",
        "src/repro/graph/graphio.py",
        "src/repro/graph/partition.py",
        "src/repro/graph/datasets.py",
        "src/repro/core/memory_path.py",
    ),
    # SoA column constructions feeding segment math
    "RL005": (
        "src/repro/dram/engine/batched.py",
        "src/repro/dram/engine/commands.py",
        "src/repro/dram/fim_batch.py",
        "src/repro/cache/batched.py",
        "src/repro/cache/base.py",
    ),
    # vectorized engines: no per-request Python walks
    "RL006": (
        "**/batched.py",
    ),
}

#: functions in digest scope whose names don't match the digest regex
DEFAULT_DIGEST_EXTRAS: dict[str, tuple[str, ...]] = {
    # resolve_cell assembles the canonical cell digest
    "src/repro/experiments/runner.py": ("resolve_cell",),
    # BatchReplayMemo.key + the memo-key part assembly in _run_batch
    "src/repro/core/memory_path.py": ("key", "_run_batch"),
}

#: batched-module functions whose loops are setup, not per-request work
DEFAULT_LOOP_SETUP = ("__init__", "_fim_steps")


def default_config() -> LintConfig:
    """The shipped configuration encoding this repo's contracts."""
    return LintConfig(
        scopes=dict(DEFAULT_SCOPES),
        digest_extra_functions=dict(DEFAULT_DIGEST_EXTRAS),
        loop_setup_functions=DEFAULT_LOOP_SETUP,
    )


def make_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in code order."""
    return [
        DigestDeterminism(),
        AtomicWrites(),
        SpawnSafety(),
        MemmapHygiene(),
        SoADtypeDiscipline(),
        NoScalarLoops(),
    ]


__all__ = [
    "AtomicWrites",
    "DEFAULT_DIGEST_EXTRAS",
    "DEFAULT_LOOP_SETUP",
    "DEFAULT_SCOPES",
    "DigestDeterminism",
    "MemmapHygiene",
    "NoScalarLoops",
    "SoADtypeDiscipline",
    "SpawnSafety",
    "default_config",
    "make_rules",
]
