"""repro-lint framework: files, rules, suppressions, fixes, reports.

The linter is a plain AST walk -- no import of the checked code, so it
runs on any tree state (broken imports, missing optional deps) and in
any interpreter that can ``ast.parse`` the sources.  The moving parts:

- :class:`FileContext`: one parsed file (source, AST, line table) plus
  the helpers rules need (dotted-name resolution, byte->char columns).
- :class:`Rule`: one invariant, identified by an ``RLxxx`` code, scoped
  to the repo-relative paths where the invariant holds (scope patterns
  live in :mod:`repro.lint.rules`; tests inject their own
  :class:`LintConfig`).
- Suppressions: ``# repro-lint: disable=RL004 -- why this is safe``.
  The justification text after ``--`` is *required*; a bare disable is
  itself a violation (RL007), as is a disable naming an unknown rule or
  one that suppresses nothing (when the full rule set runs).  An inline
  comment covers its own line; a standalone comment line covers the
  next statement line.
- Fixes: mechanical rules attach pure text insertions; ``--fix``
  applies them bottom-up and re-lints.

Exit codes (CLI): 0 clean, 1 violations, 2 usage error (including
unknown rule codes -- never silently ignored).
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

#: engine-level pseudo-rule codes (not subclasses of Rule)
PARSE_ERROR = "RL000"
SUPPRESSION_DISCIPLINE = "RL007"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>\S.*))?\s*$"
)


@dataclass(frozen=True)
class Insertion:
    """One pure text insertion at a (1-based line, byte column) point."""

    line: int
    byte_col: int
    text: str


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: mechanical fix as pure insertions; None when not auto-fixable
    fix: tuple[Insertion, ...] | None = None

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixable": self.fixable,
        }

    def render(self) -> str:
        tail = "  [fixable]" if self.fixable else ""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} {self.message}{tail}"
        )


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    path: str
    #: line the comment sits on
    comment_line: int
    #: line whose violations it suppresses
    target_line: int
    codes: tuple[str, ...]
    justification: str | None


@dataclass
class LintConfig:
    """Scope patterns and per-rule knobs.

    ``scopes`` maps a rule code to repo-relative glob patterns (posix
    separators); a rule only runs on files matching one of its
    patterns.  The remaining fields tune individual rules -- see
    :mod:`repro.lint.rules` for the defaults that encode this repo's
    actual contracts.
    """

    scopes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: RL001: function-name regex marking digest/canonicalization scope
    digest_name_re: str = r"(digest|canonical|snapshot|_hash)"
    #: RL001: extra function qualnames (per file pattern) in scope
    digest_extra_functions: dict[str, tuple[str, ...]] = field(
        default_factory=dict
    )
    #: RL002: identifier regex marking tmp-staging values as safe targets
    safe_target_re: str = r"(tmp|temp|spill|scratch)"
    #: RL006: function names whose loops are setup, not per-request work
    loop_setup_functions: tuple[str, ...] = ("__init__",)

    def rule_applies(self, code: str, rel_path: str) -> bool:
        patterns = self.scopes.get(code)
        if not patterns:
            return False
        return any(fnmatch.fnmatch(rel_path, p) for p in patterns)


class FileContext:
    """One file under lint: source, AST, and location helpers."""

    def __init__(self, rel_path: str, source: str) -> None:
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:  # surfaced as RL000
            self.parse_error = exc
        self.suppressions = _parse_suppressions(
            rel_path, source, self.lines
        )

    # -- location helpers ----------------------------------------------
    def char_col(self, lineno: int, byte_col: int) -> int:
        """AST columns are UTF-8 byte offsets; report char columns."""
        if lineno < 1 or lineno > len(self.lines):
            return byte_col
        raw = self.lines[lineno - 1].encode("utf-8")[:byte_col]
        return len(raw.decode("utf-8", errors="replace"))

    def violation(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        fix: tuple[Insertion, ...] | None = None,
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = self.char_col(line, getattr(node, "col_offset", 0))
        return Violation(rule, self.rel_path, line, col, message, fix)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: one invariant with a code, a name, and a check."""

    code: str = "RL999"
    name: str = "unnamed"
    description: str = ""

    def check(self, ctx: FileContext, config: LintConfig) -> list[Violation]:
        raise NotImplementedError


def _comment_tokens(source: str, lines: Sequence[str]) -> list[tuple[int, str]]:
    """(line, text) of every real comment -- tokenized, so suppression
    syntax quoted in docstrings or string literals never counts."""
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparseable file (already an RL000): raw line scan fallback
        return [
            (index, line)
            for index, line in enumerate(lines, start=1)
            if "#" in line
        ]


def _parse_suppressions(
    rel_path: str, source: str, lines: Sequence[str]
) -> list[Suppression]:
    out: list[Suppression] = []
    for index, comment in _comment_tokens(source, lines):
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        codes = tuple(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        justification = match.group("why")
        line = lines[index - 1] if index <= len(lines) else comment
        stripped = line.strip()
        if stripped.startswith("#"):
            # standalone comment: covers the next statement line
            target = index + 1
            for later in range(index, len(lines)):
                text = lines[later].strip()
                if text and not text.startswith("#"):
                    target = later + 1
                    break
        else:
            target = index
        out.append(
            Suppression(rel_path, index, target, codes, justification)
        )
    return out


@dataclass
class LintReport:
    """The outcome of one lint run."""

    violations: list[Violation]
    files_checked: int
    fixes_applied: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
            "counts_by_rule": self.counts_by_rule(),
            "fixes_applied": self.fixes_applied,
        }

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        counts = self.counts_by_rule()
        summary = (
            f"{len(self.violations)} violation(s) in "
            f"{self.files_checked} file(s)"
            + (f" [{', '.join(f'{c}x{n}' for c, n in counts.items())}]"
               if counts else "")
            + (f"; {self.fixes_applied} fix(es) applied"
               if self.fixes_applied else "")
        )
        if self.ok:
            summary = f"clean: {self.files_checked} file(s) checked" + (
                f"; {self.fixes_applied} fix(es) applied"
                if self.fixes_applied else ""
            )
        lines.append(summary)
        return "\n".join(lines)


class Linter:
    """Run a rule set over files, honouring suppressions and --fix."""

    def __init__(
        self,
        rules: Sequence[Rule],
        config: LintConfig,
        *,
        all_rules_selected: bool = True,
        known_codes: set[str] | None = None,
    ) -> None:
        self.rules = list(rules)
        self.config = config
        #: unused-suppression checking is only sound when every rule ran
        self.all_rules_selected = all_rules_selected
        codes = [rule.code for rule in self.rules]
        if len(set(codes)) != len(codes):
            raise ValueError(f"duplicate rule codes: {codes}")
        #: the full rule universe for unknown-code checks; under --select
        #: a deselected rule's suppression is known, just not exercised
        self.known_codes = (
            set(known_codes) if known_codes is not None else set(codes)
        ) | {PARSE_ERROR, SUPPRESSION_DISCIPLINE}

    # ------------------------------------------------------------------
    def check_source(self, rel_path: str, source: str) -> list[Violation]:
        """Lint one in-memory source (the unit tests' entry point)."""
        ctx = FileContext(rel_path, source)
        return self._check_ctx(ctx)

    def _check_ctx(self, ctx: FileContext) -> list[Violation]:
        known_codes = self.known_codes
        violations: list[Violation] = []
        if ctx.parse_error is not None:
            err = ctx.parse_error
            violations.append(
                Violation(
                    PARSE_ERROR,
                    ctx.rel_path,
                    err.lineno or 1,
                    (err.offset or 1) - 1,
                    f"syntax error: {err.msg}",
                )
            )
            raw = violations
        else:
            raw = list(violations)
            for rule in self.rules:
                if not self.config.rule_applies(rule.code, ctx.rel_path):
                    continue
                raw.extend(rule.check(ctx, self.config))

        # -- apply suppressions ----------------------------------------
        used: set[tuple[int, str]] = set()
        kept: list[Violation] = []
        by_line: dict[int, dict[str, Suppression]] = {}
        for sup in ctx.suppressions:
            if sup.justification:  # malformed ones never suppress
                for code in sup.codes:
                    by_line.setdefault(sup.target_line, {})[code] = sup
        for violation in raw:
            sup = by_line.get(violation.line, {}).get(violation.rule)
            if sup is not None:
                used.add((sup.comment_line, violation.rule))
                continue
            kept.append(violation)

        # -- RL007: suppression discipline -----------------------------
        for sup in ctx.suppressions:
            if not sup.justification:
                kept.append(
                    Violation(
                        SUPPRESSION_DISCIPLINE,
                        ctx.rel_path,
                        sup.comment_line,
                        0,
                        "suppression without justification: write "
                        "'# repro-lint: disable=RLxxx -- why this is safe'",
                    )
                )
                continue
            for code in sup.codes:
                if code not in known_codes:
                    kept.append(
                        Violation(
                            SUPPRESSION_DISCIPLINE,
                            ctx.rel_path,
                            sup.comment_line,
                            0,
                            f"suppression names unknown rule {code!r}",
                        )
                    )
                elif (
                    self.all_rules_selected
                    and (sup.comment_line, code) not in used
                ):
                    kept.append(
                        Violation(
                            SUPPRESSION_DISCIPLINE,
                            ctx.rel_path,
                            sup.comment_line,
                            0,
                            f"unused suppression for {code}: nothing on "
                            f"line {sup.target_line} violates it",
                        )
                    )
        kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return kept

    # ------------------------------------------------------------------
    def run(
        self,
        files: Iterable[tuple[str, pathlib.Path]],
        *,
        fix: bool = False,
        write: Callable[[pathlib.Path, str], None] | None = None,
    ) -> LintReport:
        """Lint (rel_path, abs_path) pairs; optionally apply fixes.

        With ``fix=True``, fixable unsuppressed violations are applied
        (bottom-up, so insert points stay valid) and the file re-linted;
        ``write`` defaults to writing the file in place.
        """
        if write is None:
            write = lambda path, text: path.write_text(text)  # noqa: E731
        violations: list[Violation] = []
        fixes_applied = 0
        count = 0
        for rel_path, abs_path in files:
            count += 1
            source = abs_path.read_text()
            found = self.check_source(rel_path, source)
            if fix:
                fixed_source, applied = apply_fixes(source, found)
                if applied:
                    write(abs_path, fixed_source)
                    fixes_applied += applied
                    found = self.check_source(rel_path, fixed_source)
            violations.extend(found)
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return LintReport(violations, count, fixes_applied)


def apply_fixes(
    source: str, violations: Sequence[Violation]
) -> tuple[str, int]:
    """Apply every violation's insertions bottom-up; returns the new
    source and the number of violations fixed.  Overlapping fixes are
    applied greedily (identical insert points merge in source order)."""
    insertions: list[tuple[int, str, int]] = []  # (offset, text, vidx)
    line_starts = [0]
    for line in source.splitlines(keepends=True):
        line_starts.append(line_starts[-1] + len(line))

    def to_offset(ins: Insertion) -> int:
        if ins.line < 1 or ins.line > len(line_starts) - 1:
            return len(source)
        line_text = source[
            line_starts[ins.line - 1]:
            line_starts[min(ins.line, len(line_starts) - 1)]
        ]
        raw = line_text.encode("utf-8")[:ins.byte_col]
        return line_starts[ins.line - 1] + len(
            raw.decode("utf-8", errors="replace")
        )

    fixed = 0
    for index, violation in enumerate(violations):
        if violation.fix is None:
            continue
        fixed += 1
        for ins in violation.fix:
            insertions.append((to_offset(ins), ins.text, index))
    if not insertions:
        return source, 0
    # apply from the end so earlier offsets stay valid; stable on ties
    insertions.sort(key=lambda item: item[0])
    out = source
    for offset, text, _ in reversed(insertions):
        out = out[:offset] + text + out[offset:]
    return out, fixed


def iter_python_files(
    paths: Sequence[pathlib.Path], root: pathlib.Path
) -> list[tuple[str, pathlib.Path]]:
    """Expand CLI path arguments into sorted (rel, abs) .py pairs.

    Hidden directories, ``__pycache__``, and non-Python files are
    skipped; paths outside ``root`` keep their absolute form as the
    display/scope path (so scope patterns simply won't match them).
    """
    seen: dict[str, pathlib.Path] = {}
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            candidates: Iterable[pathlib.Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            parts = candidate.parts
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in parts[len(root.resolve().parts):]
            ):
                continue
            try:
                rel = candidate.relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = candidate.as_posix()
            seen[rel] = candidate
    return sorted(seen.items())


def report_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=1) + "\n"


__all__ = [
    "FileContext",
    "Insertion",
    "LintConfig",
    "LintReport",
    "Linter",
    "PARSE_ERROR",
    "Rule",
    "SUPPRESSION_DISCIPLINE",
    "Suppression",
    "Violation",
    "apply_fixes",
    "dotted_name",
    "iter_python_files",
    "report_json",
]
