"""repro-lint command line.

Usage::

    PYTHONPATH=src python -m repro.lint src tools
    python -m repro.lint --select RL001,RL005 src
    python -m repro.lint --fix src
    python -m repro.lint --json src tools > lint.json

Exit codes: 0 clean, 1 violations found, 2 usage error (unknown rule
codes in ``--select`` are a usage error, never silently ignored).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .core import Linter, iter_python_files, report_json
from .rules import default_config, make_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for this repo's correctness "
            "contracts (digest determinism, atomic writes, spawn "
            "safety, memmap hygiene, SoA dtypes, no scalar loops)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--root", type=pathlib.Path, default=None,
        help="repo root for scope-pattern matching (default: cwd)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes in place, then re-lint",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    opts = parser.parse_args(argv)

    rules = make_rules()
    config = default_config()

    if opts.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.description}")
        return 0

    all_selected = True
    known = {rule.code for rule in rules}
    if opts.select is not None:
        wanted = {c.strip() for c in opts.select.split(",") if c.strip()}
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"repro-lint: unknown rule code(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        if not wanted:
            print("repro-lint: --select given but empty", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.code in wanted]
        all_selected = wanted == known

    root = (opts.root or pathlib.Path.cwd()).resolve()
    paths = opts.paths or [root / "src", root / "tools"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "repro-lint: no such path: "
            + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    files = iter_python_files(paths, root)

    linter = Linter(
        rules, config,
        all_rules_selected=all_selected, known_codes=known,
    )
    report = linter.run(files, fix=opts.fix)

    if opts.as_json:
        sys.stdout.write(report_json(report))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
