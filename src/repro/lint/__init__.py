"""repro-lint: AST-based static enforcement of the repo's invariants.

The rules codify the contracts the hypothesis suites defend
dynamically -- digest determinism (RL001), atomic tmp+os.replace
commits (RL002), spawn-safe picklability (RL003), memmap copy hygiene
(RL004), explicit SoA dtypes (RL005), and no scalar per-request loops
in batched modules (RL006).  See docs/INVARIANTS.md for the catalogue
and ``python -m repro.lint --list-rules`` for the live rule set.
"""

from __future__ import annotations

import pathlib

from .core import (
    FileContext,
    Insertion,
    LintConfig,
    LintReport,
    Linter,
    PARSE_ERROR,
    Rule,
    SUPPRESSION_DISCIPLINE,
    Suppression,
    Violation,
    apply_fixes,
    iter_python_files,
    report_json,
)
from .rules import default_config, make_rules


def run_paths(
    paths: list[pathlib.Path] | None = None,
    root: pathlib.Path | None = None,
) -> LintReport:
    """Lint ``paths`` (default: ``root``/src + ``root``/tools) with the
    shipped rule set; the programmatic twin of ``python -m repro.lint``
    used by ``tools/perf_report.py`` and the meta-tests."""
    root = (root or pathlib.Path.cwd()).resolve()
    if paths is None:
        paths = [p for p in (root / "src", root / "tools") if p.exists()]
    linter = Linter(make_rules(), default_config())
    return linter.run(iter_python_files(paths, root))


__all__ = [
    "FileContext",
    "Insertion",
    "LintConfig",
    "LintReport",
    "Linter",
    "PARSE_ERROR",
    "Rule",
    "SUPPRESSION_DISCIPLINE",
    "Suppression",
    "Violation",
    "apply_fixes",
    "default_config",
    "iter_python_files",
    "make_rules",
    "report_json",
    "run_paths",
]
