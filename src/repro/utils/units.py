"""Unit constants used throughout the memory-system models."""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: DDR burst (cache line) size in bytes.  All DDR-family devices transfer
#: 64 B per fixed-length burst; LPDDR4/GDDR5/HBM use 32 B (Sec. VII-G).
CACHE_LINE_BYTES = 64

#: Granularity of a vertex property element (8 B, Sec. IV-A).
WORD_BYTES = 8


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of ``value``, raising ``ValueError`` if not a power of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)
