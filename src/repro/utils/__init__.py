"""Shared helpers: unit constants, statistics, seeded RNG."""

from repro.utils.units import KIB, MIB, GIB, CACHE_LINE_BYTES, WORD_BYTES
from repro.utils.stats import geometric_mean, Counter

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "CACHE_LINE_BYTES",
    "WORD_BYTES",
    "geometric_mean",
    "Counter",
]
