"""Small statistics helpers shared by the harness and the models."""

from __future__ import annotations

import math
from collections.abc import Iterable


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for the GM columns).

    Raises ``ValueError`` on an empty sequence or non-positive entries, so a
    harness bug cannot silently produce a bogus GM row.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Counter:
    """A named bag of additive counters.

    Cheaper and more explicit than ``collections.Counter`` for the hot
    simulation paths: attribute-style access, explicit merge, and a stable
    ``as_dict`` for reporting.
    """

    __slots__ = ("_data",)

    def __init__(self, **initial: float) -> None:
        self._data: dict[str, float] = dict(initial)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._data[name] = self._data.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._data.get(name, 0.0)

    def merge(self, other: "Counter") -> None:
        for key, value in other._data.items():
            self._data[key] = self._data.get(key, 0.0) + value

    def as_dict(self) -> dict[str, float]:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._data.items()))
        return f"Counter({inner})"
