"""Command-line interface: ``python -m repro <command>``.

Commands:

``list``
    Show every reproducible figure with its paper headline.
``figure <id> [--fast] [--profile NAME] [--chunk-size N] [--workers N]
[--resume] [--checkpoint-dir DIR] [--tile-backing memory|disk]``
    Regenerate one figure table (e.g. ``fig10``, ``fig19b``).  With
    ``--fast`` the experiment grid is trimmed (fewer datasets and
    iterations) for a quick smoke run.  ``--profile`` selects the
    experiment scale (``toy`` default, ``mid``, ``paper``) and
    ``--chunk-size`` overrides the profile's memory-path tile chunking.
    ``--workers`` shards the figure's grid across worker processes that
    share memmapped graphs; ``--resume`` (with ``--checkpoint-dir``,
    default ``.repro_checkpoints``) skips cells already checkpointed by
    an earlier -- possibly killed -- run.  ``--tile-backing disk``
    builds tiles with the bucketed external sort into a memmapped tile
    store (``--tile-store-root``) instead of holding them in RAM --
    bit-identical results at bounded RSS.
``profiles``
    Print the scale-profile knob table (toy / mid / paper).
``microbench [--engine]``
    Run the Fig. 9 strided microbenchmark on the analytic model or the
    command-level engine.
``validate``
    Replay the Sec. VI virtual-row command sequences through both
    protocol checkers (the FPGA-emulation substitute).
``datasets``
    Print the scaled dataset registry (Table II stand-ins).
``serve [--host H] [--port P] [--store DIR] [--jobs N] [--backend B]``
    Run the long-lived experiment service: POST experiment configs to
    ``/experiments``, repeat requests are served from the
    content-addressed result cache (see docs/SERVICE.md).

The figure functions live in :mod:`repro.experiments.figures`; the CLI
is a thin dispatcher so results match the pytest benches exactly.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

from repro.experiments import figures

#: figure id -> (callable, paper headline, fast-mode kwargs)
FIGURES: dict[str, tuple[Callable[..., list[dict]], str, dict]] = {
    "fig3": (figures.figure_3,
             "BFS traffic: >90% unuseful without tiling; RD inflation "
             "under perfect tiling",
             {"datasets": ("SW",)}),
    "fig9": (figures.figure_9, "FIM speedup ~4x at stride 8", {}),
    "fig10": (figures.figure_10,
              "Piccolo GM 1.62x; 1.68x over NMP; 2.83x over PIM",
              {"datasets": ("UU", "SW"), "algorithms": ("PR", "BFS")}),
    "fig11": (figures.figure_11,
              "Piccolo within ~4% of the 8B-line ideal",
              {"datasets": ("UU", "SW"), "algorithms": ("PR", "BFS")}),
    "fig12": (figures.figure_12, "43.2% fewer off-chip transactions",
              {"datasets": ("UU", "SW"), "algorithms": ("PR", "BFS")}),
    "fig13": (figures.figure_13,
              "Piccolo 60.3% off-chip utilisation + internal bandwidth",
              {"datasets": ("UU", "SW"), "algorithms": ("PR", "BFS")}),
    "fig14": (figures.figure_14, "37.3% GM energy reduction",
              {"datasets": ("UU", "SW"), "algorithms": ("PR", "BFS")}),
    "fig15": (figures.figure_15, "DDR4 x16 benefits most; 32B-burst "
              "devices less", {"algorithms": ("PR", "BFS")}),
    "fig16": (figures.figure_16, "more ranks -> more FIM speedup",
              {"algorithms": ("PR", "BFS")}),
    "fig17": (figures.figure_17, "Piccolo prefers larger tiles (x2-x8)",
              {"algorithms": ("PR", "BFS")}),
    "fig18": (figures.figure_18,
              "Piccolo wins on WS and Kronecker synthetics",
              {"datasets": ("WS26", "KN25")}),
    "fig19a": (figures.figure_19a, "edge-centric also gains, except UU",
               {"datasets": ("UU", "SW")}),
    "fig19b": (figures.figure_19b, "~3.8x on OLAP selects",
               {"num_rows": 1 << 13}),
    "fig20a": (figures.figure_20a, "+17.9% (x4) / +20.3% (HBM) with "
               "enhanced FIM", {"algorithms": ("PR", "BFS")}),
    "fig20b": (figures.figure_20b, "~22.8% slowdown without prefetching",
               {"datasets": ("UU", "SW")}),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in FIGURES)
    for name, (_, headline, _fast) in FIGURES.items():
        print(f"{name:<{width}}  {headline}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import dataclasses
    import inspect

    from repro.experiments.config import get_profile

    key = args.id.lower().replace(".", "").replace("_", "")
    if key not in FIGURES:
        print(f"unknown figure {args.id!r}; run `python -m repro list`",
              file=sys.stderr)
        return 2
    fn, headline, fast_kwargs = FIGURES[key]
    kwargs = dict(fast_kwargs) if args.fast else {}
    scale = get_profile(args.profile)
    if args.chunk_size is not None:
        scale = dataclasses.replace(scale, chunk_size=args.chunk_size)
    if args.tile_backing is not None:
        scale = dataclasses.replace(scale, tile_backing=args.tile_backing)
    if args.tile_store_root is not None:
        scale = dataclasses.replace(
            scale, tile_store_root=args.tile_store_root
        )
    params = inspect.signature(fn).parameters
    takes_scale = "scale" in params
    if takes_scale:
        kwargs["scale"] = scale
    elif (
        args.profile != "toy" or args.chunk_size is not None
        or args.tile_backing is not None or args.tile_store_root is not None
    ):
        print(f"note: {key} does not take a scale profile; ignoring "
              f"--profile/--chunk-size/--tile-backing", file=sys.stderr)
    wants_workers = (
        args.workers is not None or args.resume
        or args.checkpoint_dir is not None
    )
    if "workers" in params:
        if wants_workers:
            kwargs["workers"] = args.workers
            kwargs["resume"] = args.resume
            kwargs["checkpoint_dir"] = args.checkpoint_dir
    elif wants_workers:
        print(f"note: {key} has no run_system grid to shard; ignoring "
              f"--workers/--resume/--checkpoint-dir", file=sys.stderr)
    rows = fn(**kwargs)
    title = f"{key} -- paper: {headline}"
    if takes_scale and scale.name != "toy":
        title = f"{key} [{scale.name}] -- paper: {headline}"
    figures.print_rows(title, rows)
    return 0


def _cmd_microbench(args: argparse.Namespace) -> int:
    if args.engine:
        from repro.dram.engine.xval import microbench_speedups
        from repro.dram.spec import default_config

        rows = []
        for single_row in (True, False):
            for row in microbench_speedups(default_config(), 1 << 18,
                                           single_row=single_row):
                rows.append({
                    "layout": "single-row" if single_row else "multi-row",
                    **{k: v for k, v in row.items()},
                })
        figures.print_rows("Fig. 9 on the command-level engine", rows)
    else:
        figures.print_rows("Fig. 9 (analytic)", figures.figure_9())
    return 0


def _cmd_validate(_args: argparse.Namespace) -> int:
    import numpy as np

    from repro.dram.engine import DRAMEngine, check_engine_result
    from repro.dram.engine.workloads import fim_requests, random_mix
    from repro.dram.spec import default_config
    from repro.validate.end_to_end import validate_fim_data_path

    config = default_config()
    ok = validate_fim_data_path()
    print(f"functional gather/scatter + Sec. VI command translation: "
          f"{'OK' if ok else 'FAILED'}")
    engine = DRAMEngine(config, refresh_enabled=True)
    addrs, _ = random_mix(config, 400, seed=0)
    requests, channels = fim_requests(config, addrs)
    result = engine.run(requests, channels)
    checked = check_engine_result(result)
    print(f"cycle-level engine trace: {checked} commands, "
          f"{result.stats.gathers} gathers -- protocol clean")
    return 0 if ok else 1


def _cmd_profiles(_args: argparse.Namespace) -> int:
    from repro.experiments.config import PROFILES

    knob_rows = [profile.describe() for profile in PROFILES.values()]
    keys = list(knob_rows[0])
    width = max(len(k) for k in keys)
    header = f"{'knob':<{width}}" + "".join(
        f" {row['name']:>12}" for row in knob_rows
    )
    print(header)
    for key in keys:
        if key == "name":
            continue
        cells = "".join(f" {str(row[key]):>12}" for row in knob_rows)
        print(f"{key:<{width}}{cells}")
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.graph.datasets import DATASETS, load_dataset

    print(f"{'key':<6} {'paper graph':<24} {'|V|':>9} {'|E|':>10} "
          f"{'avg deg':>8}")
    for key, spec in DATASETS.items():
        graph = load_dataset(key)
        degree = graph.num_edges / max(1, graph.num_vertices)
        print(f"{key:<6} {spec.description:<24} {graph.num_vertices:>9}"
              f" {graph.num_edges:>10} {degree:>8.1f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ExperimentService
    from repro.service.fastapi_app import fastapi_available, serve_fastapi
    from repro.service.http import serve

    backend = args.backend
    if backend == "auto":
        backend = "fastapi" if fastapi_available() else "stdlib"
    service = ExperimentService(
        args.store,
        max_workers=args.jobs,
        workers_per_job=args.job_workers,
        trajectory_path=args.trajectory,
    )
    try:
        if backend == "fastapi":
            serve_fastapi(service, args.host, args.port)
        else:
            serve(service, args.host, args.port)
    except RuntimeError as exc:  # missing optional backend deps
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Piccolo (HPCA 2025) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible figures").set_defaults(
        fn=_cmd_list
    )
    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("id", help="figure id, e.g. fig10")
    figure.add_argument("--fast", action="store_true",
                        help="trimmed grid for a quick smoke run")
    from repro.experiments.config import PROFILES

    figure.add_argument("--profile", default="toy", choices=sorted(PROFILES),
                        help="experiment scale profile (default: toy)")
    figure.add_argument("--chunk-size", type=int, default=None,
                        metavar="N",
                        help="override the profile's memory-path tile "
                        "chunking (accesses per chunk)")
    figure.add_argument("--tile-backing", default=None,
                        choices=("memory", "disk"),
                        help="tile-array backing: disk builds tiles by "
                        "bucketed external sort into a memmapped store "
                        "(bounded RSS, bit-identical results)")
    figure.add_argument("--tile-store-root", default=None, metavar="DIR",
                        help="tile-store directory for --tile-backing "
                        "disk (default: REPRO_TILE_STORE or a per-"
                        "process temp dir)")
    figure.add_argument("--workers", type=int, default=None, metavar="N",
                        help="shard the figure's grid across N worker "
                        "processes (shared memmapped graphs)")
    figure.add_argument("--resume", action="store_true",
                        help="load finished cells from the checkpoint "
                        "directory instead of re-running them")
    figure.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="per-cell checkpoint directory (default "
                        "with --resume: .repro_checkpoints)")
    figure.set_defaults(fn=_cmd_figure)
    micro = sub.add_parser("microbench", help="Fig. 9 strided sweep")
    micro.add_argument("--engine", action="store_true",
                       help="use the command-level engine")
    micro.set_defaults(fn=_cmd_microbench)
    sub.add_parser(
        "validate", help="protocol validation (FPGA-emulation substitute)"
    ).set_defaults(fn=_cmd_validate)
    sub.add_parser(
        "profiles", help="scale-profile knob table (toy / mid / paper)"
    ).set_defaults(fn=_cmd_profiles)
    sub.add_parser("datasets", help="scaled dataset registry").set_defaults(
        fn=_cmd_datasets
    )
    serve_cmd = sub.add_parser(
        "serve",
        help="long-lived experiment service with a content-addressed "
        "result cache (see docs/SERVICE.md)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8321,
                           help="bind port (default: 8321; 0 picks a "
                           "free port on the stdlib backend)")
    serve_cmd.add_argument("--store", default=".repro_service",
                           metavar="DIR",
                           help="content-addressed result store "
                           "(checkpoint-store layout; point it at a "
                           "sweep's --checkpoint-dir to serve its "
                           "cells; default: .repro_service)")
    serve_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="background simulation threads "
                           "(default: 1)")
    serve_cmd.add_argument("--job-workers", type=int, default=0,
                           metavar="N",
                           help="process-pool width per job via the "
                           "sharded sweep runner (default: 0 = run "
                           "in the job thread)")
    serve_cmd.add_argument("--trajectory", default="BENCH_hotpath.json",
                           metavar="PATH",
                           help="trajectory JSON exposed at "
                           "/trajectory (default: BENCH_hotpath.json)")
    serve_cmd.add_argument("--backend", default="auto",
                           choices=("auto", "stdlib", "fastapi"),
                           help="HTTP backend: auto picks fastapi when "
                           "installed, else the stdlib server "
                           "(identical contract)")
    serve_cmd.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Dispatch one CLI invocation; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
