"""DDR4 energy model (IDD-style, per-command accounting).

Constants approximate DDR4-2400 x16 datasheet values converted to
per-event energies (the usual DRAMPower-style accounting):

- ACT+PRE pair: ~2.2 nJ per activation (row charge/restore)
- column read/write: ~1.1 / 1.3 nJ per 64 B burst (array + peripheral)
- I/O + termination: ~2.1 nJ per 64 B burst crossing the pins -- the
  dominant component, as Fig. 14's breakdown shows
- background + refresh: ~110 mW per rank

Piccolo-FIM's internal column accesses pay the array portion but not the
I/O portion; offset-buffer writes pay I/O but no array access beyond the
small buffer (charged as one column write equivalent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.spec import DRAMConfig
from repro.dram.system import PhaseStats

ACT_NJ = 2.2
RD_ARRAY_NJ = 1.1
WR_ARRAY_NJ = 1.3
IO_NJ_PER_BURST = 2.1
BACKGROUND_W_PER_RANK = 0.11
#: internal FIM column access: array energy for one 8 B word (the column
#: path is exercised at word rather than burst width)
FIM_INTERNAL_NJ_PER_WORD = RD_ARRAY_NJ / 4.0


@dataclass
class EnergyBreakdown:
    """Energy by component in nJ (Fig. 14's stacked categories)."""

    accelerator: float = 0.0
    cache: float = 0.0
    dram_rd: float = 0.0
    dram_wr: float = 0.0
    dram_io: float = 0.0
    others: float = 0.0  # DRAM background + refresh
    extra: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.accelerator + self.cache + self.dram_rd
            + self.dram_wr + self.dram_io + self.others
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "Acc": self.accelerator,
            "Cache": self.cache,
            "DRAM RD": self.dram_rd,
            "DRAM WR": self.dram_wr,
            "DRAM I/O": self.dram_io,
            "Others": self.others,
        }


class DRAMEnergyModel:
    """Converts :class:`PhaseStats` activity into DRAM energy."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        # Burst energies scale with the burst size (32 B devices move half
        # the bits per burst).
        self._burst_scale = config.spec.burst_bytes / 64.0

    def energy(self, stats: PhaseStats, duration_ns: float) -> EnergyBreakdown:
        scale = self._burst_scale
        out = EnergyBreakdown()
        out.dram_rd = stats.read_bursts * RD_ARRAY_NJ * scale
        out.dram_wr = stats.write_bursts * WR_ARRAY_NJ * scale
        out.dram_rd += stats.acts * ACT_NJ * 0.5
        out.dram_wr += stats.acts * ACT_NJ * 0.5
        out.dram_io = (
            (stats.read_bursts + stats.write_bursts) * IO_NJ_PER_BURST * scale
        )
        # Internal FIM/PIM words: array energy only, no I/O.
        out.dram_wr += stats.internal_words * FIM_INTERNAL_NJ_PER_WORD
        ranks = self.config.channels * self.config.ranks
        out.others = BACKGROUND_W_PER_RANK * ranks * duration_ns
        return out
