"""Energy and area models (Sec. VII-F).

Three analytic models mirroring the paper's methodology (Table I):

- :mod:`repro.energy.cacti` -- a CACTI-7-style SRAM model giving per-access
  energy, leakage and area for the caches and the collection-extended MSHR.
- :mod:`repro.energy.dram_energy` -- DDR4 IDD-style energy: per-activation,
  per-read/write burst, I/O driver energy (the dominant term, Fig. 14),
  plus background/refresh power.
- :mod:`repro.energy.area` -- accelerator die area and the DRAM overhead
  budget with the paper's published component counts (126-transistor
  internal controller, 0.135 % per 128-bit buffer, 4.36 % total).
"""

from repro.energy.cacti import SRAMModel
from repro.energy.dram_energy import DRAMEnergyModel, EnergyBreakdown
from repro.energy.accel_energy import AcceleratorEnergyModel, system_energy
from repro.energy.area import accelerator_area_mm2, dram_fim_overhead

__all__ = [
    "SRAMModel",
    "DRAMEnergyModel",
    "EnergyBreakdown",
    "AcceleratorEnergyModel",
    "system_energy",
    "accelerator_area_mm2",
    "dram_fim_overhead",
]
