"""CACTI-7-style analytic SRAM model.

The paper measures cache/MSHR energy and area with CACTI 7.0 at 22 nm
(Sec. VII-F).  Full CACTI solves a detailed circuit optimisation; the
figures only need *relative* energies with believable magnitudes, so this
model uses the standard first-order scaling laws CACTI itself is built
around:

- dynamic energy per access grows ~ sqrt(capacity) (bitline/wordline
  length) and linearly with associativity probed,
- leakage power grows linearly with bits,
- area grows linearly with bits (6T cell + array overhead).

Constants are anchored to published CACTI 22 nm data points (a 4 MB 8-way
cache reads at roughly 0.2 nJ; 6T SRAM cell ~0.05 um^2 at 22 nm).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

#: anchor: per-access dynamic energy of a 4 MB, 8-way, 64 B-line array
ANCHOR_CAPACITY_BYTES = 4 * 1024 * 1024
ANCHOR_DYNAMIC_NJ = 0.20
#: leakage per bit at 22 nm (W/bit)
LEAKAGE_W_PER_BIT = 1.5e-11
#: 6T cell + array overhead, um^2 per bit at 22 nm
AREA_UM2_PER_BIT = 0.062


@dataclass(frozen=True)
class SRAMModel:
    """Energy/area of one SRAM array (data or tag).

    Args:
        capacity_bytes: array capacity.
        ways_probed: associativity read per access (Piccolo's sequential
            way search probes ~1 way on average; a parallel-lookup cache
            probes all of them).
        access_bytes: bytes moved per access (energy scales weakly with
            port width; included for completeness).
    """

    capacity_bytes: int
    ways_probed: float = 8.0
    access_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.ways_probed <= 0:
            raise ValueError("ways_probed must be positive")

    @property
    def dynamic_nj_per_access(self) -> float:
        """Per-access dynamic energy in nJ (sqrt-capacity scaling)."""
        size_factor = math.sqrt(self.capacity_bytes / ANCHOR_CAPACITY_BYTES)
        way_factor = self.ways_probed / 8.0
        width_factor = math.sqrt(self.access_bytes / 64.0)
        return ANCHOR_DYNAMIC_NJ * size_factor * way_factor * width_factor

    @property
    def leakage_w(self) -> float:
        return self.capacity_bytes * 8 * LEAKAGE_W_PER_BIT

    @property
    def area_mm2(self) -> float:
        return self.capacity_bytes * 8 * AREA_UM2_PER_BIT * 1e-6

    def access_energy_nj(self, accesses: float) -> float:
        return accesses * self.dynamic_nj_per_access

    def leakage_energy_nj(self, duration_ns: float) -> float:
        return self.leakage_w * duration_ns  # W * ns = nJ


def cache_energy_model(
    data_bytes: int,
    tag_bits: int,
    ways_probed: float = 8.0,
) -> tuple[SRAMModel, SRAMModel]:
    """(data array, tag array) SRAM models for one cache design.

    Mirrors the paper's method of modelling the fg-tag array as a small
    separate 8-way array and summing data + tag (+ MSHR) energies.
    """
    tag_bytes = max(64, tag_bits // 8)
    return (
        SRAMModel(data_bytes, ways_probed=ways_probed, access_bytes=64),
        SRAMModel(tag_bytes, ways_probed=ways_probed, access_bytes=8),
    )
