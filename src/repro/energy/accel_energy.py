"""Accelerator-logic energy and full-system energy assembly (Fig. 14).

The paper synthesises the accelerator RTL with OpenROAD at Nangate45
scaled to 22 nm (Sec. VII-F) and reports that, compute being equal across
systems, the accelerator's energy differences come mostly from static
energy over the run duration.  The model here uses a per-edge dynamic
energy for the PE/updater datapath plus a static power for the logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.base import SystemResult
from repro.dram.spec import DRAMConfig
from repro.energy.cacti import SRAMModel
from repro.energy.dram_energy import DRAMEnergyModel, EnergyBreakdown

#: per-edge Process+Reduce datapath energy (nJ) at 22 nm
EDGE_OP_NJ = 0.015
#: per-vertex Apply energy (nJ)
APPLY_OP_NJ = 0.02
#: accelerator logic static power (W), excluding SRAM
LOGIC_STATIC_W = 0.25


@dataclass(frozen=True)
class AcceleratorEnergyModel:
    """Dynamic + static energy of the accelerator logic."""

    edge_op_nj: float = EDGE_OP_NJ
    apply_op_nj: float = APPLY_OP_NJ
    static_w: float = LOGIC_STATIC_W

    def energy_nj(self, result: SystemResult) -> float:
        dynamic = (
            result.edges_processed * self.edge_op_nj
            + result.vertex_applies * self.apply_op_nj
        )
        static = self.static_w * result.total_ns  # W * ns = nJ
        return dynamic + static


def system_energy(
    result: SystemResult,
    dram_config: DRAMConfig,
    sequential_way_search: bool = False,
) -> EnergyBreakdown:
    """Assemble the Fig. 14 breakdown for one system run.

    Args:
        result: the run to account.
        dram_config: the memory system it ran on.
        sequential_way_search: True for Piccolo-cache, whose sequential
            search probes ~1.5 ways on average instead of all 8
            (Sec. V-A).
    """
    breakdown = DRAMEnergyModel(dram_config).energy(result.dram, result.total_ns)
    breakdown.accelerator = AcceleratorEnergyModel().energy_nj(result)
    if result.cache_accesses:
        ways = 1.5 if sequential_way_search else 8.0
        sram = SRAMModel(max(result.onchip_bytes, 64), ways_probed=ways)
        breakdown.cache = sram.access_energy_nj(
            result.cache_accesses
        ) + sram.leakage_energy_nj(result.total_ns)
    elif result.onchip_bytes:
        # Scratchpad systems: every random access hits the SPM.
        sram = SRAMModel(max(result.onchip_bytes, 64), ways_probed=1.0)
        breakdown.cache = sram.access_energy_nj(
            2.0 * result.edges_processed + 2.0 * result.vertex_applies
        ) + sram.leakage_energy_nj(result.total_ns)
    return breakdown
