"""Per-command DRAM energy from command-level engine traces.

The phase-level model (:mod:`repro.energy.dram_energy`) charges energy
from aggregate counters.  This module walks an actual
:class:`~repro.dram.engine.engine.EngineResult` command trace and
charges every ACT/PRE pair, column access, data burst and refresh
individually -- the DRAMPower-style accounting the engine's fidelity
makes possible.  Virtual-row commands are split physically: offset and
data-buffer bursts pay I/O but only buffer-sized array energy, the
no-op'd virtual PRE/ACT pairs pay nothing in the array, and the in-bank
column walk of each gather/scatter pays word-width array energy.

The two models are cross-checked in ``tests/test_trace_energy.py``:
on identical workloads they must agree on the ordering (FIM saves I/O)
and roughly on magnitude.
"""

from __future__ import annotations

from repro.dram.engine.commands import CommandType
from repro.dram.engine.engine import EngineResult
from repro.energy.dram_energy import (
    ACT_NJ,
    BACKGROUND_W_PER_RANK,
    EnergyBreakdown,
    FIM_INTERNAL_NJ_PER_WORD,
    IO_NJ_PER_BURST,
    RD_ARRAY_NJ,
    WR_ARRAY_NJ,
)

#: refresh: all banks of a rank charge/restore once per REF
REFRESH_NJ = 8 * ACT_NJ
#: buffer read/write array energy (tiny SRAM next to the sense amps)
BUFFER_ACCESS_NJ = 0.1


def trace_energy(result: EngineResult, fim_items: int = 8,
                 burst_bytes: int = 64) -> EnergyBreakdown:
    """Charge one engine run command by command."""
    scale = burst_bytes / 64.0
    out = EnergyBreakdown()
    ranks_seen: set[tuple[int, int]] = set()
    for channel, trace in enumerate(result.traces):
        for cmd in trace:
            ranks_seen.add((channel, cmd.rank))
            if cmd.kind is CommandType.REF:
                out.others += REFRESH_NJ
            elif cmd.kind is CommandType.ACT:
                if not cmd.virtual:
                    # Half on the open, half on the restoring precharge.
                    out.dram_rd += ACT_NJ * 0.5
                    out.dram_wr += ACT_NJ * 0.5
            elif cmd.kind is CommandType.PRE:
                pass  # charged with its ACT
            elif cmd.kind is CommandType.RD:
                if cmd.virtual:
                    # Data-buffer read: I/O burst + buffer access + the
                    # in-bank gather column walk it completes.
                    out.dram_io += IO_NJ_PER_BURST * scale
                    out.dram_rd += BUFFER_ACCESS_NJ
                    out.dram_rd += fim_items * FIM_INTERNAL_NJ_PER_WORD
                else:
                    out.dram_rd += RD_ARRAY_NJ * scale
                    out.dram_io += IO_NJ_PER_BURST * scale
            elif cmd.kind is CommandType.WR:
                if cmd.virtual:
                    out.dram_wr += BUFFER_ACCESS_NJ
                    if cmd.data_clocks:
                        out.dram_io += IO_NJ_PER_BURST * scale
                    if cmd.column == 8:
                        # Scatter payload: the in-bank column walk runs
                        # once the buffers are armed.
                        out.dram_wr += fim_items * FIM_INTERNAL_NJ_PER_WORD
                else:
                    out.dram_wr += WR_ARRAY_NJ * scale
                    out.dram_io += IO_NJ_PER_BURST * scale
    out.others += (
        BACKGROUND_W_PER_RANK * max(1, len(ranks_seen)) * result.time_ns
    )
    return out


def compare_fim_vs_conventional(result_fim: EngineResult,
                                result_conv: EngineResult,
                                fim_items: int = 8,
                                burst_bytes: int = 64) -> dict[str, float]:
    """Headline ratios for one workload run both ways."""
    fim = trace_energy(result_fim, fim_items, burst_bytes)
    conv = trace_energy(result_conv, fim_items, burst_bytes)
    return {
        "io_ratio": fim.dram_io / conv.dram_io if conv.dram_io else 0.0,
        "total_ratio": fim.total / conv.total if conv.total else 0.0,
        "fim_total_nj": fim.total,
        "conv_total_nj": conv.total,
    }
