"""Area model with the paper's published component budgets (Sec. VII-F).

Accelerator die: the conventional system occupies 6.34 mm^2; Piccolo adds
the fg-tag array and the collection-extended MSHR for a total of
6.60 mm^2 (+4.10 %).

DRAM die (16 Gb DDR4, from the TechInsights floorplan the paper compares
against):

- internal controller: 126 transistors -- a clock counter (4 counters,
  72 T), a command decoder (3x 2-bit AND, 18 T) and offset-buffer logic
  (6x 2-bit AND, 36 T); ~0.04 % relative to the 4096-T CSL drivers and
  2304-T column decoders.
- offset + data buffers: 128 bits each per bank, at the local-data-buffer
  density of 0.135 % of the die per 128-bit buffer; two buffers in each
  of 16 banks plus the command generator total 4.36 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.cacti import SRAMModel

#: paper-reported die areas (mm^2, 22 nm logic + CACTI SRAM)
CONVENTIONAL_ACCEL_MM2 = 6.34
PICCOLO_ACCEL_MM2 = 6.60

#: DRAM-side transistor budget of the Piccolo-FIM internal controller
CONTROLLER_TRANSISTORS = {
    "clock_counter": 4 * 18,      # 4 counters, 72 T
    "command_decoder": 3 * 6,     # 3x 2-bit AND, 18 T
    "offset_buffer_logic": 6 * 6,  # 6x 2-bit AND, 36 T
}
#: reference structures on the die (from the floorplan analysis)
CSL_DRIVER_TRANSISTORS = 4096
COLUMN_DECODER_TRANSISTORS = 2304

#: fraction of a 16 Gb die taken by one 128-bit local data buffer
BUFFER_FRACTION_PER_128B = 0.00135
BANKS_PER_DIE = 16
BUFFERS_PER_BANK = 2  # offset + data
#: command-generator share completing the paper's 4.36 % total
COMMAND_GENERATOR_FRACTION = 0.0004


@dataclass(frozen=True)
class AreaReport:
    """Area summary for one accelerator configuration."""

    logic_mm2: float
    sram_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.logic_mm2 + self.sram_mm2


def controller_transistors() -> int:
    """Total transistors of the FIM internal controller (paper: 126)."""
    return sum(CONTROLLER_TRANSISTORS.values())


#: share of the DRAM die occupied by the column-path structures (CSL
#: drivers + column decoders) the controller is compared against
COLUMN_PATH_DIE_FRACTION = 0.02


def controller_area_fraction() -> float:
    """Controller area relative to the whole die (paper: ~0.04 %)."""
    reference = CSL_DRIVER_TRANSISTORS + COLUMN_DECODER_TRANSISTORS
    return (
        controller_transistors() / reference
    ) * COLUMN_PATH_DIE_FRACTION


def dram_fim_overhead() -> float:
    """Total DRAM die overhead of Piccolo-FIM (paper: 4.36 %)."""
    buffers = BUFFER_FRACTION_PER_128B * BUFFERS_PER_BANK * BANKS_PER_DIE
    return buffers + COMMAND_GENERATOR_FRACTION


def accelerator_area_mm2(
    piccolo: bool,
    cache_bytes: int = 4 * 1024 * 1024,
    tag_bits: int | None = None,
    reference_cache_bytes: int = 4 * 1024 * 1024,
) -> AreaReport:
    """Accelerator die area: fixed logic plus CACTI-scaled SRAM.

    At the paper's capacities this reproduces the published totals
    (6.34 -> 6.60 mm^2); other capacities scale the SRAM part by the
    CACTI area law so scaled-down experiments get proportionate numbers.
    """
    base_total = PICCOLO_ACCEL_MM2 if piccolo else CONVENTIONAL_ACCEL_MM2
    ref_sram = SRAMModel(reference_cache_bytes).area_mm2
    logic = base_total - ref_sram
    sram = SRAMModel(cache_bytes).area_mm2
    if tag_bits:
        sram += SRAMModel(max(64, tag_bits // 8)).area_mm2
    return AreaReport(logic_mm2=logic, sram_mm2=sram)


def piccolo_area_increase() -> float:
    """Relative accelerator area increase of Piccolo (paper: 4.10 %)."""
    return PICCOLO_ACCEL_MM2 / CONVENTIONAL_ACCEL_MM2 - 1.0
