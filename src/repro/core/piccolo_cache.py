"""Piccolo-cache: fine-grained storage with split (tag, fg-tag) lookup.

Sec. V / Fig. 5b.  A line covers a contiguous *window* of
``sectors_per_line * 2**fg_tag_bits * 8`` bytes (32 KB in the paper's
4 MB configuration).  The address splits, LSB to MSB, into

    [ byte(3) | fg-offset(log2 sectors) | fg-tag | set | tag ]

A line holds one 8 B sector per fg-offset; the sector's fg-tag records
*which* 128 B-strided word of the window currently occupies the slot.
Splitting the conventional 29-bit tag into a per-line 21-bit tag plus
per-sector 8-bit fg-tags cuts tag storage from 45.31 % of data capacity
to 2.05 % + 12.50 % while behaving almost like an 8 B-line cache.

Replacement (Sec. V-B / Fig. 6):

- The same tag may occupy several ways of a set; lookup searches ways
  sequentially (cheap, throughput-oriented).
- A fg-tag miss with the tag already at its way-partition quota replaces
  just the victim *sector* in the LRU line of that tag.
- Otherwise a whole line of another tag is evicted (equal way
  partitioning across the tags of the current tile; unequal partitioning
  is the paper's future work, available here as the ``"utility"`` mode).
- Victim ordering is LRU by default, SRRIP when ``policy="rrip"``
  (Fig. 11's Piccolo (RRIP) bars).

Storage layout (this module's batched engine, PERFORMANCE.md):

The per-set line metadata lives in contiguous NumPy arrays -- tags,
per-sector fg-tags, dirty masks, RRPV and recency stamps -- instead of
``_Line`` objects in Python lists.  Recency is a monotonically
increasing stamp per line: under LRU the stamp advances on every touch,
under SRRIP only on insertion, which reproduces the original MRU-first
list ordering (including SRRIP's first-max tie-break on the youngest
insertion) without any list churn.  :meth:`access` operates on the
arrays one address at a time; :meth:`access_many` materialises the
touched sets into flat Python structures once per batch, runs the whole
tile through a tight loop, and writes the arrays back.  Both paths are
behaviourally identical (enforced by tests/test_batched_equivalence.py).
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AccessResult, BaseCache, BatchResult
from repro.cache.batched import BatchedCacheEngine, empty_batch, pack_events
from repro.utils.units import log2_exact

#: SRRIP constants (2-bit re-reference prediction values).
RRIP_BITS = 2
RRIP_MAX = (1 << RRIP_BITS) - 1
RRIP_INSERT = RRIP_MAX - 1


class _LineView:
    """Read-only snapshot of one line (introspection/back-compat)."""

    __slots__ = ("tag", "fg", "dirty", "rrpv")

    def __init__(self, tag: int, fg: list[int], dirty: int, rrpv: int) -> None:
        self.tag = tag
        self.fg = fg
        self.dirty = dirty
        self.rrpv = rrpv


class PiccoloCache(BatchedCacheEngine, BaseCache):
    """The split-tag fine-grained cache of Sec. V.

    Args:
        size_bytes: data capacity.
        ways: associativity (paper: 8).
        line_bytes: line size (paper: 128 = 16 sectors x 8 B).
        sector_bytes: fine-grained granularity (paper: 8).
        fg_tag_bits: per-sector tag width (paper: 8).  Scaled-down
            experiments use 4 so the window/tile ratios match (docs/EXPERIMENTS.md).
        policy: ``"lru"`` or ``"rrip"``.
        addr_bits: modelled address width (tag accounting only).
    """

    # Replay-memo state layout (see cache/batched.py).  ``way_quota``
    # joins the digest raw: the same line state behaves differently
    # under a different quota.
    CANONICAL_ARRAYS = ("_tag", "_fgt", "_dirty", "_rrpv")
    DIGEST_RAW = ("way_quota",)
    STATE_ARRAYS = ("_tag", "_fgt", "_dirty", "_rrpv", "_ord", "_ins")
    STATE_SCALARS = ("_clock",)
    EXTRA_COUNTERS = ("sector_replacements", "line_evictions")

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        line_bytes: int = 128,
        sector_bytes: int = 8,
        fg_tag_bits: int = 8,
        policy: str = "lru",
        addr_bits: int = 48,
    ) -> None:
        super().__init__()
        if policy not in ("lru", "rrip"):
            raise ValueError("policy must be 'lru' or 'rrip'")
        if line_bytes % sector_bytes != 0:
            raise ValueError("line must be a multiple of the sector size")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        if not 1 <= fg_tag_bits <= 16:
            raise ValueError("fg_tag_bits must be in [1, 16]")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.fg_tag_bits = fg_tag_bits
        self.policy = policy
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * line_bytes)
        log2_exact(self.num_sets)
        if line_bytes // sector_bytes > 63:
            raise ValueError(
                "sectors_per_line > 63 exceeds the int64 dirty-mask width"
            )

        self._sector_shift = log2_exact(sector_bytes)
        self._fg_off_bits = log2_exact(self.sectors_per_line)
        self._fg_shift = self._sector_shift + self._fg_off_bits
        self._set_shift = self._fg_shift + fg_tag_bits
        self._set_bits = log2_exact(self.num_sets)
        self._tag_shift = self._set_shift + self._set_bits

        # Array-backed line metadata (see module docstring).
        shape = (self.num_sets, ways)
        self._tag = np.full(shape, -1, dtype=np.int64)
        self._fgt = np.full(shape + (self.sectors_per_line,), -1, dtype=np.int32)
        self._dirty = np.zeros(shape, dtype=np.int64)
        self._rrpv = np.full(shape, RRIP_INSERT, dtype=np.int16)
        #: recency stamp: touch-order under LRU, insert-order under SRRIP
        self._ord = np.zeros(shape, dtype=np.int64)
        #: insertion stamp (SRRIP's tie-break domain)
        self._ins = np.zeros(shape, dtype=np.int64)
        self._clock = 1

        #: ways each tag may occupy (equal way partitioning, Sec. V-B);
        #: the tiling layer calls :meth:`set_way_quota` per tile.
        self.way_quota = ways
        #: extra counters beyond CacheStats
        self.sector_replacements = 0
        self.line_evictions = 0

    # ------------------------------------------------------------------
    @property
    def window_bytes(self) -> int:
        """Contiguous address range one (tag, set) pair covers."""
        return 1 << self._set_shift

    def set_way_quota(self, tags_per_set: int) -> None:
        """Equal way partitioning for a tile spanning ``tags_per_set``
        distinct tags per set (Sec. V-B)."""
        if tags_per_set < 1:
            raise ValueError("tags_per_set must be >= 1")
        self.way_quota = max(1, self.ways // tags_per_set)

    # ------------------------------------------------------------------
    def _split(self, addr: int) -> tuple[int, int, int, int]:
        off = (addr >> self._sector_shift) & (self.sectors_per_line - 1)
        fg = (addr >> self._fg_shift) & ((1 << self.fg_tag_bits) - 1)
        set_idx = (addr >> self._set_shift) & (self.num_sets - 1)
        tag = addr >> self._tag_shift
        return tag, set_idx, fg, off

    def _sector_addr(self, tag: int, set_idx: int, fg: int, off: int) -> int:
        return (
            (tag << self._tag_shift)
            | (set_idx << self._set_shift)
            | (fg << self._fg_shift)
            | (off << self._sector_shift)
        )

    # ------------------------------------------------------------------
    # Scalar path (one address at a time, directly on the arrays)
    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += self.sector_bytes
        tag, set_idx, fg, off = self._split(addr)
        bit = 1 << off
        tag_row = self._tag[set_idx].tolist()
        fg_rows = self._fgt[set_idx]

        same_tag: list[int] = []
        for w, t in enumerate(tag_row):
            if t == tag:
                if fg_rows[w, off] == fg:
                    stats.hits += 1
                    if is_write:
                        self._dirty[set_idx, w] |= bit
                    self._touch(set_idx, w)
                    return AccessResult(hit=True)
                same_tag.append(w)

        stats.misses += 1
        stats.fill_bytes += self.sector_bytes
        writebacks: list[tuple[int, int]] | None = None

        # Sector replacement only when the tag already holds its allocated
        # ways (Sec. V-B); below quota the tag claims a whole new line.
        if same_tag and len(same_tag) >= self.way_quota:
            v = self._victim_among(set_idx, same_tag)
            old_fg = int(fg_rows[v, off])
            if old_fg >= 0 and int(self._dirty[set_idx, v]) & bit:
                wb_addr = self._sector_addr(tag, set_idx, old_fg, off)
                writebacks = [(wb_addr, self.sector_bytes)]
                stats.writeback_bytes += self.sector_bytes
            fg_rows[v, off] = fg
            if is_write:
                self._dirty[set_idx, v] |= bit
            else:
                self._dirty[set_idx, v] &= ~bit
            self.sector_replacements += 1
            self._touch(set_idx, v)
        else:
            # Whole-line allocation; evict another tag's LRU line if full.
            free = [w for w, t in enumerate(tag_row) if t == -1]
            if free:
                w = free[0]
            else:
                candidates = [
                    w for w in range(self.ways) if w not in same_tag
                ] or list(range(self.ways))
                w = self._victim_among(set_idx, candidates)
                stats.evictions += 1
                self.line_evictions += 1
                writebacks = self._dirty_sector_writebacks(set_idx, w)
            self._tag[set_idx, w] = tag
            fg_rows[w] = -1
            fg_rows[w, off] = fg
            self._dirty[set_idx, w] = bit if is_write else 0
            self._rrpv[set_idx, w] = RRIP_INSERT
            self._ord[set_idx, w] = self._clock
            self._ins[set_idx, w] = self._clock
            self._clock += 1

        return AccessResult(
            hit=False,
            fill_addr=addr & ~(self.sector_bytes - 1),
            fill_bytes=self.sector_bytes,
            writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    def _touch(self, set_idx: int, way: int) -> None:
        if self.policy == "lru":
            self._ord[set_idx, way] = self._clock
            self._clock += 1
        else:
            self._rrpv[set_idx, way] = 0

    def _victim_among(self, set_idx: int, candidates: list[int]) -> int:
        """Pick the victim way among ``candidates`` per the policy."""
        if self.policy == "lru":
            ord_row = self._ord[set_idx]
            return min(candidates, key=lambda w: ord_row[w])
        return self._rrip_victim(
            candidates, self._rrpv[set_idx], self._ins[set_idx]
        )

    def _dirty_sector_writebacks(
        self, set_idx: int, way: int
    ) -> list[tuple[int, int]] | None:
        dirty = int(self._dirty[set_idx, way])
        if not dirty:
            return None
        tag = int(self._tag[set_idx, way])
        fg_row = self._fgt[set_idx, way]
        writebacks = []
        for off in range(self.sectors_per_line):
            if dirty & (1 << off):
                addr = self._sector_addr(tag, set_idx, int(fg_row[off]), off)
                writebacks.append((addr, self.sector_bytes))
        self.stats.writeback_bytes += len(writebacks) * self.sector_bytes
        return writebacks

    # ------------------------------------------------------------------
    # Batched path (whole-tile address arrays)
    # ------------------------------------------------------------------
    def access_many(self, addrs: np.ndarray, is_write: bool) -> BatchResult:
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return empty_batch()

        sectors = self.sectors_per_line
        sector_mask = self.sector_bytes - 1
        fg_shift = self._fg_shift
        quota = self.way_quota
        nways = self.ways
        is_lru = self.policy == "lru"

        # Vectorized address decomposition (the per-access bit slicing
        # the scalar loop pays in the interpreter).
        off_a = (addrs >> self._sector_shift) & (sectors - 1)
        fg_a = (addrs >> fg_shift) & ((1 << self.fg_tag_bits) - 1)
        set_a = (addrs >> self._set_shift) & (self.num_sets - 1)
        tag_a = addrs >> self._tag_shift
        fill_a = addrs & ~sector_mask
        # Fill address with the fg field cleared: OR-ing a victim's old
        # fg-tag back in yields its write-back address in two int ops.
        nofg_a = fill_a & ~(((1 << self.fg_tag_bits) - 1) << fg_shift)
        bit_a = np.left_shift(1, off_a)

        tag_l = tag_a.tolist()
        set_l = set_a.tolist()
        fg_l = fg_a.tolist()
        off_l = off_a.tolist()
        bit_l = bit_a.tolist()
        fill_l = fill_a.tolist()
        nofg_l = nofg_a.tolist()

        # Materialise the touched sets into flat Python structures.  Tag
        # groups are built MRU-first so the LRU victim is simply the
        # group's tail (no per-miss min() scan); the loop keeps that
        # invariant by moving touched ways to the group head.
        state: dict[int, tuple] = {}
        for s in set(set_l):
            tags = self._tag[s].tolist()
            fgw = [row.tolist() for row in self._fgt[s]]
            dirty = self._dirty[s].tolist()
            rrpv = self._rrpv[s].tolist()
            ord_ = self._ord[s].tolist()
            ins = self._ins[s].tolist()
            tagmap: dict[int, list[int]] = {}
            free: list[int] = []
            for w in sorted(range(nways), key=ord_.__getitem__, reverse=True):
                t = tags[w]
                if t == -1:
                    free.append(w)
                else:
                    tagmap.setdefault(t, []).append(w)
            state[s] = (tags, fgw, dirty, rrpv, ord_, ins, tagmap, free)

        # Write-back events carry bit 0 as a flag (sector addresses are
        # 8 B aligned): one append per event, unpacked vectorised below.
        events: list[int] = []
        clk = self._clock
        hits = wb_events = sector_repl = line_evict = 0
        cur_s = -1
        tags = fgw = dirty = rrpv = ord_ = ins = tagmap = free = None

        for tag, s, fg, off, bit, fill, nofg in zip(
            tag_l, set_l, fg_l, off_l, bit_l, fill_l, nofg_l
        ):
            if s != cur_s:
                tags, fgw, dirty, rrpv, ord_, ins, tagmap, free = state[s]
                cur_s = s
            grp = tagmap.get(tag)
            if grp is not None:
                hit_w = -1
                for w in grp:
                    if fgw[w][off] == fg:
                        hit_w = w
                        break
                if hit_w >= 0:
                    hits += 1
                    if is_write:
                        dirty[hit_w] |= bit
                    if is_lru:
                        ord_[hit_w] = clk
                        clk += 1
                        if grp[0] != hit_w:
                            grp.remove(hit_w)
                            grp.insert(0, hit_w)
                    else:
                        rrpv[hit_w] = 0
                    continue
            # miss: the fill precedes any write-back it displaces
            events.append(fill)
            if grp is not None and len(grp) >= quota:
                # sector replacement in the tag's LRU/SRRIP-victim line
                if is_lru:
                    v = grp[-1]
                    if grp[0] != v:
                        grp.pop()
                        grp.insert(0, v)
                    ord_[v] = clk
                    clk += 1
                else:
                    v = self._rrip_victim(grp, rrpv, ins)
                    rrpv[v] = 0
                row = fgw[v]
                old_fg = row[off]
                if old_fg >= 0 and dirty[v] & bit:
                    events.append(nofg | (old_fg << fg_shift) | 1)
                    wb_events += 1
                row[off] = fg
                if is_write:
                    dirty[v] |= bit
                else:
                    dirty[v] &= ~bit
                sector_repl += 1
            else:
                # whole-line allocation, evicting another tag if full
                if free:
                    w = free.pop()
                else:
                    cands = [w2 for w2 in range(nways) if tags[w2] != tag]
                    if not cands:
                        cands = list(range(nways))
                    if is_lru:
                        w = min(cands, key=ord_.__getitem__)
                    else:
                        w = self._rrip_victim(cands, rrpv, ins)
                    line_evict += 1
                    d = dirty[w]
                    if d:
                        vrow = fgw[w]
                        base = (tags[w] << self._tag_shift) | (
                            s << self._set_shift
                        )
                        o = 0
                        while d:
                            if d & 1:
                                events.append(
                                    base
                                    | (vrow[o] << fg_shift)
                                    | (o << self._sector_shift)
                                    | 1
                                )
                                wb_events += 1
                            d >>= 1
                            o += 1
                    old_grp = tagmap[tags[w]]
                    old_grp.remove(w)
                    if not old_grp:
                        del tagmap[tags[w]]
                        # the victim may have shared our tag (degenerate
                        # all-same-tag fallback): re-resolve the group
                        grp = tagmap.get(tag)
                tags[w] = tag
                new_row = [-1] * sectors
                new_row[off] = fg
                fgw[w] = new_row
                dirty[w] = bit if is_write else 0
                rrpv[w] = RRIP_INSERT
                ord_[w] = clk
                ins[w] = clk
                clk += 1
                if grp is not None:
                    grp.insert(0, w)
                else:
                    tagmap[tag] = [w]

        # Write the mutated sets back to the arrays.
        for s, (tags, fgw, dirty, rrpv, ord_, ins, _, _) in state.items():
            self._tag[s] = tags
            self._fgt[s] = fgw
            self._dirty[s] = dirty
            self._rrpv[s] = rrpv
            self._ord[s] = ord_
            self._ins[s] = ins
        self._clock = clk

        misses = n - hits
        stats = self.stats
        stats.accesses += n
        stats.requested_bytes += n * self.sector_bytes
        stats.hits += hits
        stats.misses += misses
        stats.fill_bytes += misses * self.sector_bytes
        stats.writeback_bytes += wb_events * self.sector_bytes
        stats.evictions += line_evict
        self.sector_replacements += sector_repl
        self.line_evictions += line_evict

        return pack_events(n, hits, events, self.sector_bytes)

    @staticmethod
    def _rrip_victim(cands, rrpv, ins) -> int:
        """SRRIP victim: highest RRPV wins, youngest insertion breaks
        ties (the original MRU-first list put the newest insertion
        first, and ``max`` kept the first of equals); age if none is at
        max.  Works on both the flat batched lists and the NumPy rows
        of the scalar path."""
        while True:
            best, best_r, best_i = -1, -1, -1
            for w in cands:
                r = rrpv[w]
                if r > best_r or (r == best_r and ins[w] > best_i):
                    best, best_r, best_i = w, r, ins[w]
            if best_r >= RRIP_MAX:
                return best
            for w in cands:
                if rrpv[w] < RRIP_MAX:
                    rrpv[w] += 1

    # ------------------------------------------------------------------
    def _mru_order(self, set_idx: int) -> list[int]:
        """Way indices in the original MRU-first list order."""
        key = self._ord if self.policy == "lru" else self._ins
        valid = [w for w in range(self.ways) if self._tag[set_idx, w] != -1]
        return sorted(valid, key=lambda w: -int(key[set_idx, w]))

    @property
    def _sets(self) -> list[list[_LineView]]:
        """Read-only line views per set, MRU-first (back-compat)."""
        return [
            [
                _LineView(
                    int(self._tag[s, w]),
                    self._fgt[s, w].tolist(),
                    int(self._dirty[s, w]),
                    int(self._rrpv[s, w]),
                )
                for w in self._mru_order(s)
            ]
            for s in range(self.num_sets)
        ]

    def flush(self) -> list[tuple[int, int]]:
        writebacks: list[tuple[int, int]] = []
        for set_idx in range(self.num_sets):
            for w in self._mru_order(set_idx):
                wb = self._dirty_sector_writebacks(set_idx, w)
                if wb:
                    writebacks.extend(wb)
        self._tag.fill(-1)
        self._fgt.fill(-1)
        self._dirty.fill(0)
        self._rrpv.fill(RRIP_INSERT)
        self._ord.fill(0)
        self._ins.fill(0)
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.size_bytes

    @property
    def tag_bits(self) -> int:
        return self.addr_bits - self._tag_shift

    @property
    def tag_overhead_bits(self) -> int:
        lines = self.num_sets * self.ways
        return lines * self.tag_bits + lines * self.sectors_per_line * self.fg_tag_bits

    @property
    def tag_overhead_fraction(self) -> float:
        """Line-tag storage relative to data (paper: 2.05 %)."""
        return (self.num_sets * self.ways * self.tag_bits) / (self.size_bytes * 8)

    @property
    def fg_tag_overhead_fraction(self) -> float:
        """fg-tag storage relative to data (paper: 12.50 %)."""
        lines = self.num_sets * self.ways
        return (lines * self.sectors_per_line * self.fg_tag_bits) / (
            self.size_bytes * 8
        )
