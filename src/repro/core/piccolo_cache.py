"""Piccolo-cache: fine-grained storage with split (tag, fg-tag) lookup.

Sec. V / Fig. 5b.  A line covers a contiguous *window* of
``sectors_per_line * 2**fg_tag_bits * 8`` bytes (32 KB in the paper's
4 MB configuration).  The address splits, LSB to MSB, into

    [ byte(3) | fg-offset(log2 sectors) | fg-tag | set | tag ]

A line holds one 8 B sector per fg-offset; the sector's fg-tag records
*which* 128 B-strided word of the window currently occupies the slot.
Splitting the conventional 29-bit tag into a per-line 21-bit tag plus
per-sector 8-bit fg-tags cuts tag storage from 45.31 % of data capacity
to 2.05 % + 12.50 % while behaving almost like an 8 B-line cache.

Replacement (Sec. V-B / Fig. 6):

- The same tag may occupy several ways of a set; lookup searches ways
  sequentially (cheap, throughput-oriented).
- A fg-tag miss with the tag already at its way-partition quota replaces
  just the victim *sector* in the LRU line of that tag.
- Otherwise a whole line of another tag is evicted (equal way
  partitioning across the tags of the current tile; unequal partitioning
  is the paper's future work, available here as the ``"utility"`` mode).
- Victim ordering is LRU by default, SRRIP when ``policy="rrip"``
  (Fig. 11's Piccolo (RRIP) bars).
"""

from __future__ import annotations

from repro.cache.base import AccessResult, BaseCache
from repro.utils.units import log2_exact

#: SRRIP constants (2-bit re-reference prediction values).
RRIP_BITS = 2
RRIP_MAX = (1 << RRIP_BITS) - 1
RRIP_INSERT = RRIP_MAX - 1


class _Line:
    """One Piccolo-cache line: a tag plus per-sector fg-tags."""

    __slots__ = ("tag", "fg", "dirty", "rrpv")

    def __init__(self, tag: int, sectors: int) -> None:
        self.tag = tag
        self.fg = [-1] * sectors  # -1 = invalid sector
        self.dirty = 0            # bitmask over sectors
        self.rrpv = RRIP_INSERT


class PiccoloCache(BaseCache):
    """The split-tag fine-grained cache of Sec. V.

    Args:
        size_bytes: data capacity.
        ways: associativity (paper: 8).
        line_bytes: line size (paper: 128 = 16 sectors x 8 B).
        sector_bytes: fine-grained granularity (paper: 8).
        fg_tag_bits: per-sector tag width (paper: 8).  Scaled-down
            experiments use 4 so the window/tile ratios match (DESIGN.md).
        policy: ``"lru"`` or ``"rrip"``.
        addr_bits: modelled address width (tag accounting only).
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int = 8,
        line_bytes: int = 128,
        sector_bytes: int = 8,
        fg_tag_bits: int = 8,
        policy: str = "lru",
        addr_bits: int = 48,
    ) -> None:
        super().__init__()
        if policy not in ("lru", "rrip"):
            raise ValueError("policy must be 'lru' or 'rrip'")
        if line_bytes % sector_bytes != 0:
            raise ValueError("line must be a multiple of the sector size")
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        if not 1 <= fg_tag_bits <= 16:
            raise ValueError("fg_tag_bits must be in [1, 16]")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sector_bytes = sector_bytes
        self.sectors_per_line = line_bytes // sector_bytes
        self.fg_tag_bits = fg_tag_bits
        self.policy = policy
        self.addr_bits = addr_bits
        self.num_sets = size_bytes // (ways * line_bytes)
        log2_exact(self.num_sets)

        self._sector_shift = log2_exact(sector_bytes)
        self._fg_off_bits = log2_exact(self.sectors_per_line)
        self._fg_shift = self._sector_shift + self._fg_off_bits
        self._set_shift = self._fg_shift + fg_tag_bits
        self._set_bits = log2_exact(self.num_sets)
        self._tag_shift = self._set_shift + self._set_bits
        self._sets: list[list[_Line]] = [[] for _ in range(self.num_sets)]
        #: ways each tag may occupy (equal way partitioning, Sec. V-B);
        #: the tiling layer calls :meth:`set_way_quota` per tile.
        self.way_quota = ways
        #: extra counters beyond CacheStats
        self.sector_replacements = 0
        self.line_evictions = 0

    # ------------------------------------------------------------------
    @property
    def window_bytes(self) -> int:
        """Contiguous address range one (tag, set) pair covers."""
        return 1 << self._set_shift

    def set_way_quota(self, tags_per_set: int) -> None:
        """Equal way partitioning for a tile spanning ``tags_per_set``
        distinct tags per set (Sec. V-B)."""
        if tags_per_set < 1:
            raise ValueError("tags_per_set must be >= 1")
        self.way_quota = max(1, self.ways // tags_per_set)

    # ------------------------------------------------------------------
    def _split(self, addr: int) -> tuple[int, int, int, int]:
        off = (addr >> self._sector_shift) & (self.sectors_per_line - 1)
        fg = (addr >> self._fg_shift) & ((1 << self.fg_tag_bits) - 1)
        set_idx = (addr >> self._set_shift) & (self.num_sets - 1)
        tag = addr >> self._tag_shift
        return tag, set_idx, fg, off

    def _sector_addr(self, tag: int, set_idx: int, fg: int, off: int) -> int:
        return (
            (tag << self._tag_shift)
            | (set_idx << self._set_shift)
            | (fg << self._fg_shift)
            | (off << self._sector_shift)
        )

    # ------------------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        stats.requested_bytes += self.sector_bytes
        tag, set_idx, fg, off = self._split(addr)
        ways = self._sets[set_idx]
        bit = 1 << off

        # Sequential way search (Sec. V-A): first matching tag wins the
        # fg-tag comparison; remember every same-tag line for replacement.
        same_tag_idx: list[int] = []
        for i, line in enumerate(ways):
            if line.tag == tag:
                if line.fg[off] == fg:
                    stats.hits += 1
                    if is_write:
                        line.dirty |= bit
                    self._touch(ways, i)
                    return AccessResult(hit=True)
                same_tag_idx.append(i)

        stats.misses += 1
        stats.fill_bytes += self.sector_bytes
        writebacks: list[tuple[int, int]] | None = None

        # Sector replacement only when the tag already holds its allocated
        # ways (Sec. V-B); below quota the tag claims a whole new line.
        if same_tag_idx and len(same_tag_idx) >= self.way_quota:
            # Replace one sector in the victim line of this tag (Fig. 6).
            victim_i = self._victim_among(ways, same_tag_idx)
            line = ways[victim_i]
            old_fg = line.fg[off]
            if old_fg >= 0 and line.dirty & bit:
                wb_addr = self._sector_addr(tag, set_idx, old_fg, off)
                writebacks = [(wb_addr, self.sector_bytes)]
                stats.writeback_bytes += self.sector_bytes
            line.fg[off] = fg
            if is_write:
                line.dirty |= bit
            else:
                line.dirty &= ~bit
            self.sector_replacements += 1
            self._touch(ways, victim_i)
        else:
            # Whole-line allocation; evict another tag's LRU line if full.
            if len(ways) >= self.ways:
                victim_i = self._victim_among(
                    ways,
                    [i for i in range(len(ways)) if i not in same_tag_idx]
                    or list(range(len(ways))),
                )
                victim = ways.pop(victim_i)
                stats.evictions += 1
                self.line_evictions += 1
                writebacks = self._dirty_sector_writebacks(victim, set_idx)
            line = _Line(tag, self.sectors_per_line)
            line.fg[off] = fg
            if is_write:
                line.dirty |= bit
            line.rrpv = RRIP_INSERT
            ways.insert(0, line)

        return AccessResult(
            hit=False,
            fill_addr=addr & ~(self.sector_bytes - 1),
            fill_bytes=self.sector_bytes,
            writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    def _touch(self, ways: list[_Line], index: int) -> None:
        if self.policy == "lru":
            if index:
                ways.insert(0, ways.pop(index))
        else:
            ways[index].rrpv = 0

    def _victim_among(self, ways: list[_Line], candidates: list[int]) -> int:
        """Pick the victim index among ``candidates`` per the policy."""
        if self.policy == "lru":
            # MRU-first list: the last candidate is least recently used.
            return candidates[-1]
        # SRRIP: the candidate with the highest RRPV; age if none at max.
        while True:
            best = max(candidates, key=lambda i: ways[i].rrpv)
            if ways[best].rrpv >= RRIP_MAX:
                return best
            for i in candidates:
                ways[i].rrpv = min(RRIP_MAX, ways[i].rrpv + 1)

    def _dirty_sector_writebacks(
        self, line: _Line, set_idx: int
    ) -> list[tuple[int, int]] | None:
        if not line.dirty:
            return None
        writebacks = []
        for off in range(self.sectors_per_line):
            if line.dirty & (1 << off):
                addr = self._sector_addr(line.tag, set_idx, line.fg[off], off)
                writebacks.append((addr, self.sector_bytes))
        self.stats.writeback_bytes += len(writebacks) * self.sector_bytes
        return writebacks

    def flush(self) -> list[tuple[int, int]]:
        writebacks: list[tuple[int, int]] = []
        for set_idx, ways in enumerate(self._sets):
            for line in ways:
                wb = self._dirty_sector_writebacks(line, set_idx)
                if wb:
                    writebacks.extend(wb)
            ways.clear()
        return writebacks

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.size_bytes

    @property
    def tag_bits(self) -> int:
        return self.addr_bits - self._tag_shift

    @property
    def tag_overhead_bits(self) -> int:
        lines = self.num_sets * self.ways
        return lines * self.tag_bits + lines * self.sectors_per_line * self.fg_tag_bits

    @property
    def tag_overhead_fraction(self) -> float:
        """Line-tag storage relative to data (paper: 2.05 %)."""
        return (self.num_sets * self.ways * self.tag_bits) / (self.size_bytes * 8)

    @property
    def fg_tag_overhead_fraction(self) -> float:
        """fg-tag storage relative to data (paper: 12.50 %)."""
        lines = self.num_sets * self.ways
        return (lines * self.sectors_per_line * self.fg_tag_bits) / (
            self.size_bytes * 8
        )
