"""Functional Piccolo-FIM DRAM device (Sec. IV-B, Fig. 4).

Unlike the timing model in :mod:`repro.dram`, this module moves *real
bytes*: each bank owns a data-cell array, a sense-amplifier row buffer,
and the three Piccolo additions -- an offset buffer, a data buffer and a
tiny internal controller.  The protocol validator (the FPGA-emulation
substitute, :mod:`repro.validate.protocol`) drives this device with
standard DDR4 command sequences and checks bit-exact results.

The device is deliberately small and explicit: the paper's internal
controller is 126 transistors, and the Python mirror is a handful of
integer index operations.
"""

from __future__ import annotations

import numpy as np

from repro.dram.spec import DeviceSpec


class FimCommandError(RuntimeError):
    """An illegal command for the current bank state."""


class FimBank:
    """One DRAM bank with Piccolo's offset/data buffers.

    Words are 8 bytes; a row holds ``spec.row_words`` words.  The offset
    buffer keeps up to ``items`` column offsets, the data buffer the same
    number of words (Fig. 4: 128 bits per buffer per bank for x16 DDR4,
    i.e. eight 16-bit offsets / the per-chip slice of eight words).
    """

    def __init__(self, spec: DeviceSpec, rows: int = 64) -> None:
        self.spec = spec
        self.rows = rows
        self.row_words = spec.row_words
        self.items = spec.fim_items_per_op
        self.cells = np.zeros((rows, self.row_words), dtype=np.uint64)
        self.row_buffer = np.zeros(self.row_words, dtype=np.uint64)
        self.open_row: int | None = None
        self.offset_buffer = np.zeros(self.items, dtype=np.int64)
        self.offset_count = 0
        self.data_buffer = np.zeros(self.items, dtype=np.uint64)
        self.data_count = 0

    # ---------------- standard DRAM behaviour -------------------------
    def activate(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise FimCommandError(f"row {row} out of range")
        if self.open_row is not None:
            raise FimCommandError("activate with a row already open")
        self.open_row = row
        self.row_buffer[:] = self.cells[row]

    def precharge(self) -> None:
        if self.open_row is not None:
            self.cells[self.open_row] = self.row_buffer
        self.open_row = None

    def read_word(self, word: int) -> int:
        self._check_open()
        return int(self.row_buffer[word])

    def write_word(self, word: int, value: int) -> None:
        self._check_open()
        self.row_buffer[word] = np.uint64(value)

    def _check_open(self) -> None:
        if self.open_row is None:
            raise FimCommandError("no open row")

    # ---------------- Piccolo additions (shaded in Fig. 4) ------------
    def write_offset_buffer(self, offsets: list[int]) -> None:
        """Step 1: the host sends offsets over the data bus."""
        if not 0 < len(offsets) <= self.items:
            raise FimCommandError(
                f"offset burst must carry 1..{self.items} offsets"
            )
        for off in offsets:
            if not 0 <= off < self.row_words:
                raise FimCommandError(f"offset {off} exceeds the row")
        self.offset_buffer[: len(offsets)] = offsets
        self.offset_count = len(offsets)

    def gather_execute(self) -> None:
        """Steps 2-4: the internal controller picks each offset's word
        from the open row into the data buffer."""
        self._check_open()
        if self.offset_count == 0:
            raise FimCommandError("gather with an empty offset buffer")
        for i in range(self.offset_count):
            self.data_buffer[i] = self.row_buffer[self.offset_buffer[i]]
        self.data_count = self.offset_count

    def scatter_execute(self) -> None:
        """Steps 3-5 of Fig. 4b: write buffered words at each offset."""
        self._check_open()
        if self.offset_count == 0:
            raise FimCommandError("scatter with an empty offset buffer")
        if self.data_count < self.offset_count:
            raise FimCommandError("scatter without buffered data")
        for i in range(self.offset_count):
            self.row_buffer[self.offset_buffer[i]] = self.data_buffer[i]

    def read_data_buffer(self) -> list[int]:
        """Step 5 of Fig. 4a: one burst returns the gathered words."""
        if self.data_count == 0:
            raise FimCommandError("data buffer empty")
        return [int(v) for v in self.data_buffer[: self.data_count]]

    def write_data_buffer(self, values: list[int]) -> None:
        """Scatter step 2: host stages the words to scatter."""
        if not 0 < len(values) <= self.items:
            raise FimCommandError(
                f"data burst must carry 1..{self.items} words"
            )
        self.data_buffer[: len(values)] = np.asarray(values, dtype=np.uint64)
        self.data_count = len(values)


class FimChip:
    """A Piccolo-FIM DRAM chip: an array of :class:`FimBank`.

    Convenience composite used by tests and the protocol validator; the
    timing model never instantiates it (addresses-only).
    """

    def __init__(self, spec: DeviceSpec, rows: int = 64) -> None:
        self.spec = spec
        self.banks = [FimBank(spec, rows) for _ in range(spec.banks_per_rank)]

    def bank(self, index: int) -> FimBank:
        return self.banks[index]

    def gather(self, bank: int, row: int, offsets: list[int]) -> list[int]:
        """Whole gather operation against bank state (test helper)."""
        b = self.banks[bank]
        if b.open_row != row:
            if b.open_row is not None:
                b.precharge()
            b.activate(row)
        b.write_offset_buffer(offsets)
        b.gather_execute()
        return b.read_data_buffer()

    def scatter(
        self, bank: int, row: int, offsets: list[int], values: list[int]
    ) -> None:
        """Whole scatter operation against bank state (test helper)."""
        if len(offsets) != len(values):
            raise FimCommandError("offsets and values must pair up")
        b = self.banks[bank]
        if b.open_row != row:
            if b.open_row is not None:
                b.precharge()
            b.activate(row)
        b.write_offset_buffer(offsets)
        b.write_data_buffer(values)
        b.scatter_execute()
