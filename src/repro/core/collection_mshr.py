"""Collection-extended MSHR (Sec. V-C, Fig. 7).

Collects fine-grained misses (gathers) and dirty write-backs (scatters)
that fall in the same DRAM row until eight column offsets are available,
then issues one Piccolo-FIM operation.  The structure is a direct-mapped
buffer indexed by the DRAM row address; a conflicting allocation evicts
the old entry as a *partially filled* gather/scatter.

Controller flow on an incoming request (Fig. 7, right):

1. offset hits SC-MSHR  -> served by the buffered write-back data
   (read-after-write forwarding; no DRAM traffic).
2. offset hits GA-MSHR  -> MSHR hit; only a subentry is recorded.
3. otherwise            -> the offset (plus subentry or write-back data)
   is stored; reaching ``items_per_op`` offsets fires the FIM operation.

The NMP baseline reuses this structure with ``rank_level=True`` so the
issued operations serialise on the rank's shared data path instead of
executing in-bank (Sec. VII-A/C).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.dram.address import AddressMapper
from repro.dram.fim_batch import FimOp, FimOpBatch
from repro.utils.units import log2_exact


@dataclass
class MSHRStats:
    """Counters for the collection behaviour (Sec. V-C)."""

    gathers_full: int = 0
    gathers_partial: int = 0
    scatters_full: int = 0
    scatters_partial: int = 0
    forwarded_reads: int = 0   # served from SC-MSHR write-back data
    merged_reads: int = 0      # subentry merges into a pending gather
    merged_writes: int = 0     # coalesced into a pending scatter
    conflict_evictions: int = 0

    @property
    def total_ops(self) -> int:
        return (
            self.gathers_full + self.gathers_partial
            + self.scatters_full + self.scatters_partial
        )


@dataclass
class _Entry:
    """One direct-mapped row entry: GA and SC halves share the row."""

    row_key: int
    channel: int
    rank: int
    bank: int
    row: int
    ga_offsets: set[int] = field(default_factory=set)
    sc_offsets: set[int] = field(default_factory=set)


class CollectionExtendedMSHR:
    """Direct-mapped miss-collection buffer feeding Piccolo-FIM.

    Args:
        mapper: address mapper of the target memory system.
        num_entries: row entries (paper: 4 K, scaled with the workload).
        items_per_op: offsets that trigger a full operation (8 for DDR4,
            4 for 32 B-burst devices).
        rank_level: issue NMP-style rank-level operations instead of
            in-bank FIM operations.
    """

    def __init__(
        self,
        mapper: AddressMapper,
        num_entries: int = 4096,
        items_per_op: int = 8,
        rank_level: bool = False,
    ) -> None:
        log2_exact(num_entries)
        if items_per_op < 1:
            raise ValueError("items_per_op must be >= 1")
        self.mapper = mapper
        self.num_entries = num_entries
        self.items_per_op = items_per_op
        self.rank_level = rank_level
        self.stats = MSHRStats()
        self._slots: list[_Entry | None] = [None] * num_entries
        self._total_banks = mapper.config.total_banks

    # ------------------------------------------------------------------
    def _locate(self, addr: int) -> tuple[_Entry, int, list[FimOp]]:
        """Find (allocating if needed) the entry for ``addr``'s row.

        Returns the entry, the in-row word offset, and any operations the
        allocation forced out (partial gather/scatter of a conflicting
        row).
        """
        channel, rank, bank, row, word = self.mapper.decode_scalar(addr)
        row_key = row * self._total_banks + bank
        slot = row_key & (self.num_entries - 1)
        entry = self._slots[slot]
        evicted: list[FimOp] = []
        if entry is None or entry.row_key != row_key:
            if entry is not None:
                self.stats.conflict_evictions += 1
                evicted = self._drain_entry(entry)
            entry = _Entry(
                row_key=row_key, channel=channel, rank=rank, bank=bank, row=row
            )
            self._slots[slot] = entry
        return entry, word, evicted

    def _drain_entry(self, entry: _Entry) -> list[FimOp]:
        ops: list[FimOp] = []

        def emit(channel, rank, bank, row, items, is_scatter, rank_level):
            ops.append(self._make_op(entry, items, scatter=is_scatter))

        self._drain_entry_into(entry, emit)
        return ops

    def _make_op(self, entry: _Entry, items: int, scatter: bool) -> FimOp:
        return FimOp(
            channel=entry.channel,
            rank=entry.rank,
            bank=entry.bank,
            row=entry.row,
            items=items,
            is_scatter=scatter,
            rank_level=self.rank_level,
        )

    # ------------------------------------------------------------------
    def add_read(self, addr: int) -> list[FimOp]:
        """Register a fine-grained miss; returns any issued operations."""
        entry, word, ops = self._locate(addr)
        if word in entry.sc_offsets:
            # Served from buffered write-back data (no DRAM traffic).
            self.stats.forwarded_reads += 1
            return ops
        if word in entry.ga_offsets:
            self.stats.merged_reads += 1
            return ops
        entry.ga_offsets.add(word)
        if len(entry.ga_offsets) >= self.items_per_op:
            ops.append(self._make_op(entry, len(entry.ga_offsets), scatter=False))
            self.stats.gathers_full += 1
            entry.ga_offsets.clear()
        return ops

    def add_write(self, addr: int) -> list[FimOp]:
        """Register a fine-grained write-back; returns issued operations."""
        entry, word, ops = self._locate(addr)
        if word in entry.sc_offsets:
            self.stats.merged_writes += 1
            return ops
        entry.sc_offsets.add(word)
        if len(entry.sc_offsets) >= self.items_per_op:
            ops.append(self._make_op(entry, len(entry.sc_offsets), scatter=True))
            self.stats.scatters_full += 1
            entry.sc_offsets.clear()
        return ops

    # ------------------------------------------------------------------
    def add_batch(self, addrs: np.ndarray, is_wb: np.ndarray) -> FimOpBatch:
        """Register a whole fill/write-back event stream at once.

        Behaviourally identical to calling :meth:`add_read` /
        :meth:`add_write` per event in order (the batched-equivalence
        suite enforces it); the address decode -- the scalar path's
        dominant cost -- is done in one vectorised pass, per-request
        overhead collapses into a single tight loop over precomputed
        row keys and in-row word offsets, and the issued operations are
        emitted straight into an array-backed :class:`FimOpBatch`
        (structure-of-arrays) instead of a Python object list.
        """
        ops = FimOpBatch()
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return ops
        _, _, _, _, row_key, word = self.mapper.decode_fim_many(addrs)
        slots = self._slots
        slot_mask = self.num_entries - 1
        items_per_op = self.items_per_op
        total_banks = self._total_banks
        banks_per_rank = self.mapper.config.spec.banks_per_rank
        ranks = self.mapper.config.ranks
        rank_level = self.rank_level
        emit = ops.append
        forwarded = merged_r = merged_w = 0
        gathers_full = scatters_full = conflicts = 0

        for rk, wd, wb in zip(
            row_key.tolist(),
            word.tolist(),
            np.asarray(is_wb, dtype=bool).tolist(),
        ):
            entry = slots[rk & slot_mask]
            if entry is None or entry.row_key != rk:
                if entry is not None:
                    conflicts += 1
                    self._drain_entry_into(entry, emit)
                # recover the location from the row key (rare path)
                gb = rk % total_banks
                chra = gb // banks_per_rank
                entry = _Entry(
                    row_key=rk,
                    channel=chra // ranks,
                    rank=chra % ranks,
                    bank=gb,
                    row=rk // total_banks,
                )
                slots[rk & slot_mask] = entry
            sc = entry.sc_offsets
            if wb:
                if wd in sc:
                    merged_w += 1
                    continue
                sc.add(wd)
                if len(sc) >= items_per_op:
                    emit(
                        entry.channel, entry.rank, entry.bank, entry.row,
                        len(sc), True, rank_level,
                    )
                    scatters_full += 1
                    sc.clear()
            else:
                if wd in sc:
                    # Served from buffered write-back data (no DRAM traffic).
                    forwarded += 1
                    continue
                ga = entry.ga_offsets
                if wd in ga:
                    merged_r += 1
                    continue
                ga.add(wd)
                if len(ga) >= items_per_op:
                    emit(
                        entry.channel, entry.rank, entry.bank, entry.row,
                        len(ga), False, rank_level,
                    )
                    gathers_full += 1
                    ga.clear()

        stats = self.stats
        stats.forwarded_reads += forwarded
        stats.merged_reads += merged_r
        stats.merged_writes += merged_w
        stats.gathers_full += gathers_full
        stats.scatters_full += scatters_full
        stats.conflict_evictions += conflicts
        return ops

    def _drain_entry_into(self, entry: _Entry, emit) -> None:
        """:meth:`_drain_entry`, emitting into a FimOpBatch appender."""
        if entry.ga_offsets:
            emit(
                entry.channel, entry.rank, entry.bank, entry.row,
                len(entry.ga_offsets), False, self.rank_level,
            )
            if len(entry.ga_offsets) >= self.items_per_op:
                self.stats.gathers_full += 1
            else:
                self.stats.gathers_partial += 1
            entry.ga_offsets.clear()
        if entry.sc_offsets:
            emit(
                entry.channel, entry.rank, entry.bank, entry.row,
                len(entry.sc_offsets), True, self.rank_level,
            )
            if len(entry.sc_offsets) >= self.items_per_op:
                self.stats.scatters_full += 1
            else:
                self.stats.scatters_partial += 1
            entry.sc_offsets.clear()

    def flush(self) -> FimOpBatch:
        """Drain every pending entry (end of iteration / run)."""
        ops = FimOpBatch()
        emit = ops.append
        for i, entry in enumerate(self._slots):
            if entry is not None:
                self._drain_entry_into(entry, emit)
                self._slots[i] = None
        return ops

    # ------------------------------------------------------------------
    # Exact-replay support (core.memory_path batch memoisation)
    # ------------------------------------------------------------------
    def state_digest(self) -> bytes:
        """Canonical digest of all pending collections."""
        h = hashlib.blake2b(digest_size=16)
        for i, entry in enumerate(self._slots):
            if entry is not None:
                h.update(
                    repr(
                        (
                            i,
                            entry.row_key,
                            sorted(entry.ga_offsets),
                            sorted(entry.sc_offsets),
                        )
                    ).encode()
                )
        return h.digest()

    def state_snapshot(self) -> list:
        return [
            None
            if e is None
            else _Entry(
                row_key=e.row_key,
                channel=e.channel,
                rank=e.rank,
                bank=e.bank,
                row=e.row,
                ga_offsets=set(e.ga_offsets),
                sc_offsets=set(e.sc_offsets),
            )
            for e in self._slots
        ]

    def state_restore(self, snap: list) -> None:
        self._slots = [
            None
            if e is None
            else _Entry(
                row_key=e.row_key,
                channel=e.channel,
                rank=e.rank,
                bank=e.bank,
                row=e.row,
                ga_offsets=set(e.ga_offsets),
                sc_offsets=set(e.sc_offsets),
            )
            for e in snap
        ]

    def counter_vector(self) -> tuple[int, ...]:
        s = self.stats
        return (
            s.gathers_full,
            s.gathers_partial,
            s.scatters_full,
            s.scatters_partial,
            s.forwarded_reads,
            s.merged_reads,
            s.merged_writes,
            s.conflict_evictions,
        )

    def counter_apply(self, delta: tuple[int, ...]) -> None:
        s = self.stats
        s.gathers_full += delta[0]
        s.gathers_partial += delta[1]
        s.scatters_full += delta[2]
        s.scatters_partial += delta[3]
        s.forwarded_reads += delta[4]
        s.merged_reads += delta[5]
        s.merged_writes += delta[6]
        s.conflict_evictions += delta[7]
