"""Virtual-row command translation (Sec. VI, Fig. 8).

Piccolo-FIM adds no opcode to the DDR protocol.  Each bank exposes two
*virtual rows* ``y`` and ``z``; both map onto the same pair of internal
buffers.  Ordinary writes/reads to the buffers' column addresses carry
offsets and data, and the PRE/ACT pair the memory controller naturally
emits when "switching" between the virtual rows creates the
``tWR + tRP + tRCD`` gap in which the internal controller performs the
eight column accesses (8 x tCCD_L = 39.84 ns fits inside 41.64 ns on
DDR4-2400R).

This module builds standard-command sequences for gather and scatter and
interprets them against the functional :class:`~repro.core.fim.FimBank`;
:mod:`repro.validate.protocol` then replays the sequences through a DDR4
timing checker, which is this reproduction's substitute for the paper's
FPGA emulation (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fim import FimBank, FimCommandError
from repro.dram.spec import DeviceSpec


@dataclass(frozen=True)
class DDRCommand:
    """One standard DDR command as seen on the command bus."""

    time_ns: float
    kind: str  # "ACT" | "PRE" | "RD" | "WR"
    bank: int
    row: int | None = None
    col: int | None = None
    #: payload on the data bus (offsets or 64-bit words), if any
    data: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("ACT", "PRE", "RD", "WR"):
            raise ValueError(f"non-standard command {self.kind!r}")


@dataclass(frozen=True)
class VirtualRowMap:
    """Address assignment of the two virtual rows per bank (Fig. 8a).

    The virtual rows sit above the physical rows; each has two column
    regions mapped to the offset buffer and the data buffer.
    """

    physical_rows: int
    OFFSET_BUF_COL: int = 0
    DATA_BUF_COL: int = 8

    @property
    def row_y(self) -> int:
        return self.physical_rows

    @property
    def row_z(self) -> int:
        return self.physical_rows + 1

    def is_virtual(self, row: int) -> bool:
        return row in (self.row_y, self.row_z)

    def other(self, row: int) -> int:
        if not self.is_virtual(row):
            raise ValueError(f"row {row} is not virtual")
        return self.row_z if row == self.row_y else self.row_y


def gather_sequence(
    spec: DeviceSpec,
    vmap: VirtualRowMap,
    bank: int,
    offsets: list[int],
    start_ns: float = 0.0,
    use_row_y: bool = True,
) -> list[DDRCommand]:
    """Standard-command sequence for one gather on an activated row.

    WR(offset buffer @ row y) triggers the internal gather; the
    controller then "opens" row z to read the data buffer, and the
    PRE/ACT pair (translated to no-ops inside the chip) supplies the
    tWR + tRP + tRCD execution window.
    """
    trig_row = vmap.row_y if use_row_y else vmap.row_z
    read_row = vmap.other(trig_row)
    t = start_ns
    cmds = [
        DDRCommand(t, "WR", bank, row=trig_row, col=vmap.OFFSET_BUF_COL,
                   data=tuple(offsets)),
    ]
    t += spec.tWR + spec.tBURST
    cmds.append(DDRCommand(t, "PRE", bank, row=trig_row))
    t += spec.tRP
    cmds.append(DDRCommand(t, "ACT", bank, row=read_row))
    t += spec.tRCD
    cmds.append(DDRCommand(t, "RD", bank, row=read_row, col=vmap.DATA_BUF_COL))
    return cmds


def scatter_sequence(
    spec: DeviceSpec,
    vmap: VirtualRowMap,
    bank: int,
    offsets: list[int],
    values: list[int],
    start_ns: float = 0.0,
    use_row_y: bool = True,
    dummy_write: bool = True,
) -> list[DDRCommand]:
    """Standard-command sequence for one scatter on an activated row.

    Offsets and data are written to the buffers of one virtual row; the
    next command to the *other* virtual row (a dummy write when nothing
    else is scheduled, Sec. VI) forces the PRE/ACT gap that hides the
    internal scatter.
    """
    if len(offsets) != len(values):
        raise ValueError("offsets and values must pair up")
    trig_row = vmap.row_y if use_row_y else vmap.row_z
    next_row = vmap.other(trig_row)
    t = start_ns
    cmds = [
        DDRCommand(t, "WR", bank, row=trig_row, col=vmap.OFFSET_BUF_COL,
                   data=tuple(offsets)),
    ]
    t += spec.tCCD
    cmds.append(
        DDRCommand(t, "WR", bank, row=trig_row, col=vmap.DATA_BUF_COL,
                   data=tuple(values))
    )
    if dummy_write:
        t += spec.tWR + spec.tBURST
        cmds.append(DDRCommand(t, "PRE", bank, row=trig_row))
        t += spec.tRP
        cmds.append(DDRCommand(t, "ACT", bank, row=next_row))
        t += spec.tRCD
        cmds.append(
            DDRCommand(t, "WR", bank, row=next_row, col=vmap.OFFSET_BUF_COL,
                       data=())
        )
    return cmds


class VirtualRowController:
    """The in-DRAM internal controller: interprets standard commands.

    Wraps a functional :class:`FimBank`.  Commands touching physical rows
    behave conventionally; commands touching the two virtual rows are
    translated: ACT/PRE become no-ops, writes to the buffer columns load
    the offset/data buffers (a loaded offset buffer arms a gather, a
    subsequent data write re-arms it as a scatter), and the armed
    operation executes when its timing window opens.
    """

    def __init__(self, bank: FimBank, vmap: VirtualRowMap) -> None:
        self.bank = bank
        self.vmap = vmap
        self._armed: str | None = None  # "gather" | "scatter"
        self._window_start: float | None = None
        self.executed_ops: list[tuple[str, float]] = []

    def handle(self, cmd: DDRCommand) -> list[int] | None:
        """Apply one command; RD returns the data burst payload."""
        if cmd.row is not None and self.vmap.is_virtual(cmd.row):
            return self._handle_virtual(cmd)
        # Conventional behaviour on physical rows.
        if cmd.kind == "ACT":
            self.bank.activate(cmd.row)
        elif cmd.kind == "PRE":
            self.bank.precharge()
        elif cmd.kind == "RD":
            return [self.bank.read_word(cmd.col)]
        elif cmd.kind == "WR":
            self.bank.write_word(cmd.col, cmd.data[0])
        return None

    def _handle_virtual(self, cmd: DDRCommand) -> list[int] | None:
        vmap = self.vmap
        if cmd.kind == "ACT":
            # Translated to a no-op; the internal operation keeps running
            # through the PRE/ACT gap and is checked when data is needed.
            return None
        if cmd.kind == "PRE":
            return None  # no-op: the real target row stays open
        if cmd.kind == "WR":
            if cmd.col == vmap.OFFSET_BUF_COL:
                if cmd.data:
                    self.bank.write_offset_buffer(list(cmd.data))
                    self._armed = "gather"
                    self._window_start = cmd.time_ns
                else:
                    # Dummy write keeping the activation cadence (Sec. VI).
                    self._maybe_execute(cmd.time_ns)
                return None
            if cmd.col == vmap.DATA_BUF_COL:
                self.bank.write_data_buffer(list(cmd.data))
                self._armed = "scatter"
                self._window_start = cmd.time_ns
                return None
            raise FimCommandError(f"unmapped virtual column {cmd.col}")
        if cmd.kind == "RD":
            if cmd.col != vmap.DATA_BUF_COL:
                raise FimCommandError(f"unmapped virtual column {cmd.col}")
            self._maybe_execute(cmd.time_ns)
            return self.bank.read_data_buffer()
        raise FimCommandError(f"unexpected command {cmd.kind}")

    def _maybe_execute(self, now_ns: float) -> None:
        if self._armed is None:
            return
        needed = self.bank.offset_count * self.bank.spec.tCCD
        elapsed = now_ns - (self._window_start or 0.0)
        if elapsed + 1e-9 < needed:
            raise FimCommandError(
                f"{self._armed} window too short: {elapsed:.2f} ns < "
                f"{needed:.2f} ns"
            )
        if self._armed == "gather":
            self.bank.gather_execute()
        else:
            self.bank.scatter_execute()
        self.executed_ops.append((self._armed, now_ns))
        self._armed = None
        self._window_start = None
