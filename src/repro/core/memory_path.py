"""Random-access memory paths: cache -> (MSHR) -> DRAM request streams.

The accelerator's prefetcher streams topology and sequential properties
straight from DRAM; only the *random* vertex-property accesses traverse
the on-chip cache (Fig. 1).  These classes run a batch of 8-byte accesses
through a cache and translate the resulting fills/write-backs into the
physical requests the DRAM phase evaluator consumes:

- :class:`ConventionalMemoryPath`: burst-granularity fills/write-backs
  (GraphDyns-Cache baseline).
- :class:`FineGrainedMemoryPath`: 8 B fills/write-backs batched into
  scatter/gather operations by the collection-extended MSHR (Piccolo and
  the NMP baseline, plus every fine-grained cache of Fig. 11).

A :class:`LocalityMonitor` (Sec. VIII-A) can redirect detected-sequential
traffic to conventional bursts, the fallback the paper suggests for
regular workloads.

Execution modes (PERFORMANCE.md):

Both paths default to the *batched* engine: the whole tile's address
array goes through ``cache.access_many`` and the resulting fill/
write-back event arrays feed ``mshr.add_batch`` (or the burst
accumulator) without any per-address Python calls.  Setting
``path.batched = False`` (or the module default
:data:`BATCHED_DEFAULT`) selects the seed-identical scalar loop, kept
both as the fallback contract for cache designs without an array-backed
engine and as the baseline `tools/perf_report.py` measures speedups
against.  On top of the batched engine, an exact replay memo
(:class:`BatchReplayMemo`) recognises a batch whose (cache state, MSHR
state, address stream) triple was simulated before -- e.g. PageRank
re-running identical iterations -- and replays the recorded events,
counter deltas, and end state instead of re-simulating.

Chunked tile streaming (paper-scale profiles): a finite ``chunk_size``
streams each ``run`` batch through the engine in bounded chunks, so
per-batch temporaries -- event arrays, memo records -- stay O(chunk)
instead of O(tile) while the produced counters and event streams remain
bit-identical to whole-tile execution (the engine is exactly equivalent
to the scalar loop, which has no batch boundaries, and all cross-chunk
state carries over).

Issued FIM operations accumulate in an array-backed
:class:`repro.dram.fim_batch.FimOpBatch` (structure-of-arrays), not a
Python object list.  When a ``phase_sink``
(:class:`repro.dram.system.PhaseAccumulator`) is attached, every
processed chunk is drained straight into it, so even the *request
stream* handed to the DRAM phase stays O(chunk) -- the final RSS term
at paper scale.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.cache.base import BaseCache
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.dram.fim_batch import FimOpBatch

#: default execution mode for newly built paths (tools/perf_report.py
#: flips this to time the seed-identical scalar loop)
BATCHED_DEFAULT = True
#: default replay-memo capacity (distinct batches remembered per path);
#: 0 disables replay
REPLAY_CAPACITY_DEFAULT = 256
#: default tile chunk size: each ``run`` batch is streamed in bounded
#: chunks of this many accesses (None = whole-tile batches).  Paper-scale
#: profiles set a finite chunk so per-batch temporaries and replay-memo
#: records stay O(chunk) instead of O(tile).
CHUNK_SIZE_DEFAULT: int | None = None


class BatchReplayMemo:
    """Exact replay of previously simulated batches.

    A batch's outcome is fully determined by (cache state, MSHR state,
    monitor state, address stream, access type).  The memo keys on a
    digest of that tuple; on a hit it restores the recorded end state
    and replays the recorded events/counter deltas instead of
    re-simulating.  Digests use canonical (rank-based) recency, so the
    identical iterations of stationary algorithms hit even though the
    absolute LRU clock advanced.

    ``capacity=0`` disables the memo entirely: no digests are hashed, no
    sightings are tracked, and no snapshots are recorded (``enabled`` is
    False and every method short-circuits).
    """

    def __init__(self, capacity: int = REPLAY_CAPACITY_DEFAULT) -> None:
        self.capacity = capacity
        self.enabled = capacity > 0
        self._memo: OrderedDict[bytes, tuple] = OrderedDict()
        #: keys seen once -- snapshots are only recorded on the second
        #: sighting, so one-shot batches (BFS frontiers) never pay the
        #: snapshot cost or hold memory
        self._seen: OrderedDict[bytes, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def key(self, parts: list[bytes]) -> bytes:
        if not self.enabled:
            return b""
        h = hashlib.blake2b(digest_size=16)
        for part in parts:
            h.update(part)
        return h.digest()

    def get(self, key: bytes):
        if not self.enabled:
            return None
        rec = self._memo.get(key)
        if rec is None:
            self.misses += 1
        else:
            self.hits += 1
            self._memo.move_to_end(key)
        return rec

    def should_record(self, key: bytes) -> bool:
        """True on a key's second (or later) miss."""
        if not self.enabled:
            return False
        if key in self._seen:
            return True
        self._seen[key] = None
        if len(self._seen) > 4 * self.capacity:
            self._seen.popitem(last=False)
        return False

    def put(self, key: bytes, record: tuple) -> None:
        if not self.enabled:
            return
        self._memo[key] = record
        if len(self._memo) > self.capacity:
            self._memo.popitem(last=False)


class _RequestAccumulator:
    """Ordered DRAM request stream built from array chunks and/or scalar
    appends (both paths use it for bursts)."""

    def __init__(self) -> None:
        self._chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._addrs: list[int] = []
        self._write: list[bool] = []

    def append_scalar(self, addr: int, is_write: bool) -> None:
        self._addrs.append(addr)
        self._write.append(is_write)

    def append_arrays(self, addrs: np.ndarray, writes: np.ndarray) -> None:
        if addrs.size:
            self._seal_scalar()
            self._chunks.append((addrs, writes))

    def _seal_scalar(self) -> None:
        if self._addrs:
            self._chunks.append(
                (
                    np.asarray(self._addrs, dtype=np.int64),
                    np.asarray(self._write, dtype=bool),
                )
            )
            self._addrs, self._write = [], []

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        self._seal_scalar()
        if not self._chunks:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        addrs = np.concatenate([c[0] for c in self._chunks])
        writes = np.concatenate([c[1] for c in self._chunks])
        self._chunks = []
        return addrs, writes


def _resolve_chunk_size(chunk_size: int | None) -> int | None:
    chunk = CHUNK_SIZE_DEFAULT if chunk_size is None else chunk_size
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk}")
    return chunk


class ConventionalMemoryPath:
    """Cache misses become burst-sized DRAM reads/writes."""

    def __init__(
        self,
        cache: BaseCache,
        batched: bool | None = None,
        replay_capacity: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        self.cache = cache
        self.batched = BATCHED_DEFAULT if batched is None else batched
        self.chunk_size = _resolve_chunk_size(chunk_size)
        capacity = (
            REPLAY_CAPACITY_DEFAULT if replay_capacity is None else replay_capacity
        )
        self.memo = BatchReplayMemo(capacity) if capacity > 0 else None
        self._requests = _RequestAccumulator()
        #: optional PhaseAccumulator: when set, each processed chunk's
        #: request stream is drained into it immediately (O(chunk) RSS)
        self.phase_sink = None

    def run(self, addrs: np.ndarray, rmw: bool) -> None:
        """Process a batch of 8 B accesses (``rmw`` marks read-modify-write).

        With a finite ``chunk_size`` the batch is streamed in bounded
        chunks: per-chunk temporaries (event arrays, memo records) stay
        O(chunk), and the produced request stream and counters are
        identical to whole-batch execution (the engine is exactly
        equivalent to the scalar loop, which has no batch boundaries).
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        n = addrs.size
        if n == 0:
            return
        chunk = self.chunk_size
        if chunk is None or n <= chunk:
            self._run_batch(addrs, rmw)
        else:
            for start in range(0, n, chunk):
                self._run_batch(addrs[start : start + chunk], rmw)
                self._drain_to_sink()
        self._drain_to_sink()

    def _drain_to_sink(self) -> None:
        if self.phase_sink is None:
            return
        addrs, writes = self.drain()
        if addrs.size:
            self.phase_sink.add(addrs=addrs, is_write=writes)

    def _run_batch(self, addrs: np.ndarray, rmw: bool) -> None:
        if not self.batched:
            self._run_scalar(addrs, rmw)
            return
        memo = self.memo
        key = None
        if memo is not None:
            cache_digest = self.cache.state_digest()
            if cache_digest is not None:
                key = memo.key(
                    [cache_digest, addrs.tobytes(), b"w" if rmw else b"r"]
                )
                rec = memo.get(key)
                if rec is not None:
                    ev_addr, ev_is_wb, counters, snap = rec
                    self.cache.state_restore(snap)
                    self.cache.counter_apply(counters)
                    self._requests.append_arrays(ev_addr, ev_is_wb)
                    return
                if not memo.should_record(key):
                    key = None
        before = self.cache.counter_vector() if key is not None else None
        res = self.cache.access_many(addrs, rmw)
        self._requests.append_arrays(res.ev_addr, res.ev_is_wb)
        if key is not None:
            after = self.cache.counter_vector()
            delta = tuple(a - b for a, b in zip(after, before))
            memo.put(
                key,
                (res.ev_addr, res.ev_is_wb, delta, self.cache.state_snapshot()),
            )

    def _run_scalar(self, addrs: np.ndarray, rmw: bool) -> None:
        """Seed-identical per-address loop (fallback / perf baseline)."""
        access = self.cache.access
        append = self._requests.append_scalar
        for a in addrs.tolist():
            hit, fill_addr, _, wbs = access(a, rmw)
            if not hit:
                append(fill_addr, False)
            if wbs:
                for wb_addr, _ in wbs:
                    append(wb_addr, True)

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Take the accumulated DRAM requests (and reset)."""
        return self._requests.drain()

    def flush(self) -> None:
        """Write back all dirty state (end of run)."""
        for wb_addr, _ in self.cache.flush():
            self._requests.append_scalar(wb_addr, True)


class LocalityMonitor:
    """Sequential-pattern detector (Sec. VIII-A).

    Watches address deltas over windows of ``window`` accesses (i.e.
    ``window - 1`` consecutive pairs); when the fraction of +8 B deltas
    in a window reaches ``threshold`` the path falls back to
    conventional bursts, re-evaluated every window.  The last address of
    a window seeds the first delta of the next, so no pair is ever
    dropped at a window boundary.
    """

    def __init__(self, window: int = 64, threshold: float = 0.75) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.window = window
        self.threshold = threshold
        self._last_addr: int | None = None
        self._pairs = 0
        self._sequential = 0
        self.bypass = False

    def observe(self, addr: int) -> None:
        last = self._last_addr
        self._last_addr = addr
        if last is None:
            return
        if addr - last == 8:
            self._sequential += 1
        self._pairs += 1
        if self._pairs >= self.window - 1:
            self.bypass = self._sequential / self._pairs >= self.threshold
            self._pairs = 0
            self._sequential = 0

    def observe_many(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`observe`: returns the bypass state in
        effect *after* each observation (what the scalar loop would have
        read), updating the monitor to the same end state."""
        addrs = np.asarray(addrs, dtype=np.int64)
        n = int(addrs.size)
        if n == 0:
            return np.empty(0, dtype=bool)
        pair_valid = np.ones(n, dtype=bool)
        seq = np.empty(n, dtype=bool)
        if self._last_addr is None:
            pair_valid[0] = False
            seq[0] = False
        else:
            seq[0] = int(addrs[0]) - self._last_addr == 8
        np.equal(addrs[1:] - addrs[:-1], 8, out=seq[1:])
        seq &= pair_valid

        window_pairs = self.window - 1
        pair_count = self._pairs + np.cumsum(pair_valid)
        evals = np.flatnonzero(((pair_count % window_pairs) == 0) & pair_valid)
        seq_cum = self._sequential + np.cumsum(seq.astype(np.int64))

        out = np.empty(n, dtype=bool)
        if evals.size == 0:
            out.fill(self.bypass)
            self._pairs = int(pair_count[-1])
            self._sequential = int(seq_cum[-1])
        else:
            seq_at = seq_cum[evals]
            window_seq = np.diff(np.concatenate(([0], seq_at)))
            flags = (window_seq / window_pairs) >= self.threshold
            # segment [0, evals[0]] keeps the incoming state; each
            # evaluation's verdict applies from its own access onward
            bounds = np.concatenate(([0], evals, [n]))
            lengths = np.diff(bounds)
            values = np.concatenate(([self.bypass], flags))
            out = np.repeat(values, lengths)
            self.bypass = bool(flags[-1])
            self._pairs = int(pair_count[-1]) - window_pairs * evals.size
            self._sequential = int(seq_cum[-1] - seq_cum[evals[-1]])
        self._last_addr = int(addrs[-1])
        return out

    def state_tuple(self) -> tuple:
        return (self._last_addr, self._pairs, self._sequential, self.bypass)

    def state_restore(self, state: tuple) -> None:
        self._last_addr, self._pairs, self._sequential, self.bypass = state


class FineGrainedMemoryPath:
    """Fine-grained cache + collection-extended MSHR -> FIM operations."""

    def __init__(
        self,
        cache: BaseCache,
        mshr: CollectionExtendedMSHR,
        locality_monitor: LocalityMonitor | None = None,
        batched: bool | None = None,
        replay_capacity: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        self.cache = cache
        self.mshr = mshr
        self.monitor = locality_monitor
        self.batched = BATCHED_DEFAULT if batched is None else batched
        self.chunk_size = _resolve_chunk_size(chunk_size)
        capacity = (
            REPLAY_CAPACITY_DEFAULT if replay_capacity is None else replay_capacity
        )
        self.memo = BatchReplayMemo(capacity) if capacity > 0 else None
        self.fim_ops = FimOpBatch()
        #: conventional bursts issued while the locality monitor bypasses
        self._bypass = _RequestAccumulator()
        self._last_bypass_fill = -1
        self._last_bypass_wb = -1
        #: optional PhaseAccumulator: when set, each processed chunk's
        #: FIM ops and bypass bursts drain into it immediately
        self.phase_sink = None

    # ------------------------------------------------------------------
    def run(self, addrs: np.ndarray, rmw: bool) -> None:
        """Process a batch of 8 B accesses through cache + MSHR.

        With a finite ``chunk_size`` the batch is streamed in bounded
        chunks (see :meth:`ConventionalMemoryPath.run`); counters, FIM-op
        streams, and bypass bursts are identical to whole-batch
        execution because the engine is exactly equivalent to the scalar
        loop and all cross-chunk state (cache, MSHR, monitor, burst
        coalescing watermarks) carries over.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        n = addrs.size
        if n == 0:
            return
        chunk = self.chunk_size
        if chunk is None or n <= chunk:
            self._run_batch(addrs, rmw)
        else:
            for start in range(0, n, chunk):
                self._run_batch(addrs[start : start + chunk], rmw)
                self._drain_to_sink()
        self._drain_to_sink()

    def _drain_to_sink(self) -> None:
        if self.phase_sink is None:
            return
        ops, addrs, writes = self.drain()
        if len(ops) or addrs.size:
            self.phase_sink.add(
                addrs=addrs if addrs.size else None,
                is_write=writes if addrs.size else None,
                fim_ops=ops if len(ops) else None,
            )

    def _run_batch(self, addrs: np.ndarray, rmw: bool) -> None:
        if not self.batched:
            self._run_scalar(addrs, rmw)
            return
        memo = self.memo
        key = None
        if memo is not None:
            cache_digest = self.cache.state_digest()
            if cache_digest is not None:
                parts = [
                    cache_digest,
                    self.mshr.state_digest(),
                    addrs.tobytes(),
                    b"w" if rmw else b"r",
                ]
                if self.monitor is not None:
                    # repro-lint: disable=RL001 -- state_tuple() is ints only
                    parts.append(repr(self.monitor.state_tuple()).encode())
                    parts.append(
                        # repro-lint: disable=RL001 -- a bool 2-tuple
                        repr((self._last_bypass_fill, self._last_bypass_wb)).encode()
                    )
                key = memo.key(parts)
                rec = memo.get(key)
                if rec is not None:
                    self._replay(rec)
                    return
                if not memo.should_record(key):
                    key = None
        before = None
        ops_before = len(self.fim_ops)
        if key is not None:
            before = (
                self.cache.counter_vector(),
                self.mshr.counter_vector(),
            )
            # seal pending scalar appends so the chunk watermark below
            # cannot fold pre-batch bursts into this batch's record
            self._bypass._seal_scalar()
            bypass_chunks_before = len(self._bypass._chunks)
        self._run_batched(addrs, rmw)
        if key is not None:
            cache_delta = tuple(
                a - b
                for a, b in zip(self.cache.counter_vector(), before[0])
            )
            mshr_delta = tuple(
                a - b for a, b in zip(self.mshr.counter_vector(), before[1])
            )
            self._bypass._seal_scalar()
            record = (
                self.fim_ops.tail_columns(ops_before),
                tuple(self._bypass._chunks[bypass_chunks_before:]),
                cache_delta,
                mshr_delta,
                self.cache.state_snapshot(),
                self.mshr.state_snapshot(),
                self.monitor.state_tuple() if self.monitor is not None else None,
                (self._last_bypass_fill, self._last_bypass_wb),
            )
            memo.put(key, record)

    def _replay(self, rec: tuple) -> None:
        (
            op_columns,
            bypass_chunks,
            cache_delta,
            mshr_delta,
            cache_snap,
            mshr_snap,
            monitor_state,
            bypass_state,
        ) = rec
        self.fim_ops.extend_columns(op_columns)
        for chunk in bypass_chunks:
            self._bypass.append_arrays(*chunk)
        self.cache.counter_apply(cache_delta)
        self.mshr.counter_apply(mshr_delta)
        self.cache.state_restore(cache_snap)
        self.mshr.state_restore(mshr_snap)
        if monitor_state is not None:
            self.monitor.state_restore(monitor_state)
        self._last_bypass_fill, self._last_bypass_wb = bypass_state

    # ------------------------------------------------------------------
    def _run_batched(self, addrs: np.ndarray, rmw: bool) -> None:
        if self.monitor is None:
            res = self.cache.access_many(addrs, rmw)
            self.fim_ops.extend(self.mshr.add_batch(res.ev_addr, res.ev_is_wb))
            return
        flags = self.monitor.observe_many(addrs)
        # split into maximal constant-bypass segments, in order
        change = np.empty(flags.size, dtype=bool)
        change[0] = True
        np.not_equal(flags[1:], flags[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], flags.size)
        for start, end in zip(starts.tolist(), ends.tolist()):
            segment = addrs[start:end]
            res = self.cache.access_many(segment, rmw)
            if not flags[start]:
                self.fim_ops.extend(
                    self.mshr.add_batch(res.ev_addr, res.ev_is_wb)
                )
                continue
            # Conventional burst fills; consecutive words of the same
            # 64 B block share one burst (per fill/write-back stream).
            blocks = res.ev_addr & ~63
            is_wb = res.ev_is_wb
            keep = np.zeros(blocks.size, dtype=bool)
            for wb_flag, carry_attr in ((False, "_last_bypass_fill"), (True, "_last_bypass_wb")):
                idx = np.flatnonzero(is_wb == wb_flag)
                if idx.size == 0:
                    continue
                cat = blocks[idx]
                cat_keep = np.empty(idx.size, dtype=bool)
                cat_keep[0] = cat[0] != getattr(self, carry_attr)
                np.not_equal(cat[1:], cat[:-1], out=cat_keep[1:])
                keep[idx] = cat_keep
                setattr(self, carry_attr, int(cat[-1]))
            sel = np.flatnonzero(keep)
            self._bypass.append_arrays(blocks[sel], is_wb[sel])

    # ------------------------------------------------------------------
    def _run_scalar(self, addrs: np.ndarray, rmw: bool) -> None:
        """Seed-identical per-address loop (fallback / perf baseline)."""
        access = self.cache.access
        add_read = self.mshr.add_read
        add_write = self.mshr.add_write
        ops = self.fim_ops
        monitor = self.monitor
        for a in addrs.tolist():
            if monitor is not None:
                monitor.observe(a)
                if monitor.bypass:
                    # Conventional burst fills; consecutive words of the
                    # same 64 B block share one burst.
                    hit, fill_addr, _, wbs = access(a, rmw)
                    if not hit:
                        block = fill_addr & ~63
                        if block != self._last_bypass_fill:
                            self._bypass.append_scalar(block, False)
                            self._last_bypass_fill = block
                    if wbs:
                        for wb_addr, _ in wbs:
                            block = wb_addr & ~63
                            if block != self._last_bypass_wb:
                                self._bypass.append_scalar(block, True)
                                self._last_bypass_wb = block
                    continue
            hit, fill_addr, _, wbs = access(a, rmw)
            if not hit:
                issued = add_read(fill_addr)
                if issued:
                    ops.extend(issued)
            if wbs:
                for wb_addr, _ in wbs:
                    issued = add_write(wb_addr)
                    if issued:
                        ops.extend(issued)

    # ------------------------------------------------------------------
    def drain(self) -> tuple[FimOpBatch, np.ndarray, np.ndarray]:
        """Take accumulated FIM ops and bypass bursts (and reset)."""
        ops = self.fim_ops
        self.fim_ops = FimOpBatch()
        addrs, writes = self._bypass.drain()
        return ops, addrs, writes

    def flush(self) -> None:
        """Drain cache dirty state and pending MSHR entries (end of run)."""
        writebacks = self.cache.flush()
        if writebacks:
            if self.batched:
                wb_addrs = np.asarray(
                    [wb_addr for wb_addr, _ in writebacks], dtype=np.int64
                )
                self.fim_ops.extend(
                    self.mshr.add_batch(
                        wb_addrs, np.ones(wb_addrs.size, dtype=bool)
                    )
                )
            else:
                for wb_addr, _ in writebacks:
                    issued = self.mshr.add_write(wb_addr)
                    if issued:
                        self.fim_ops.extend(issued)
        self.fim_ops.extend(self.mshr.flush())
