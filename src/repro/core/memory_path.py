"""Random-access memory paths: cache -> (MSHR) -> DRAM request streams.

The accelerator's prefetcher streams topology and sequential properties
straight from DRAM; only the *random* vertex-property accesses traverse
the on-chip cache (Fig. 1).  These classes run a batch of 8-byte accesses
through a cache and translate the resulting fills/write-backs into the
physical requests the DRAM phase evaluator consumes:

- :class:`ConventionalMemoryPath`: burst-granularity fills/write-backs
  (GraphDyns-Cache baseline).
- :class:`FineGrainedMemoryPath`: 8 B fills/write-backs batched into
  scatter/gather operations by the collection-extended MSHR (Piccolo and
  the NMP baseline, plus every fine-grained cache of Fig. 11).

A :class:`LocalityMonitor` (Sec. VIII-A) can redirect detected-sequential
traffic to conventional bursts, the fallback the paper suggests for
regular workloads.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import BaseCache
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.dram.system import FimOp


class ConventionalMemoryPath:
    """Cache misses become burst-sized DRAM reads/writes."""

    def __init__(self, cache: BaseCache) -> None:
        self.cache = cache
        self.req_addrs: list[int] = []
        self.req_write: list[bool] = []

    def run(self, addrs: np.ndarray, rmw: bool) -> None:
        """Process a batch of 8 B accesses (``rmw`` marks read-modify-write)."""
        access = self.cache.access
        req_a, req_w = self.req_addrs, self.req_write
        for a in addrs.tolist():
            hit, fill_addr, _, wbs = access(a, rmw)
            if not hit:
                req_a.append(fill_addr)
                req_w.append(False)
            if wbs:
                for wb_addr, _ in wbs:
                    req_a.append(wb_addr)
                    req_w.append(True)

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Take the accumulated DRAM requests (and reset)."""
        addrs = np.asarray(self.req_addrs, dtype=np.int64)
        writes = np.asarray(self.req_write, dtype=bool)
        self.req_addrs, self.req_write = [], []
        return addrs, writes

    def flush(self) -> None:
        """Write back all dirty state (end of run)."""
        for wb_addr, _ in self.cache.flush():
            self.req_addrs.append(wb_addr)
            self.req_write.append(True)


class LocalityMonitor:
    """Sequential-pattern detector (Sec. VIII-A).

    Watches the last ``window`` accesses; when the fraction of +8 B deltas
    exceeds ``threshold`` the path falls back to conventional bursts,
    re-evaluated every window.
    """

    def __init__(self, window: int = 64, threshold: float = 0.75) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.window = window
        self.threshold = threshold
        self._last_addr: int | None = None
        self._seen = 0
        self._sequential = 0
        self.bypass = False

    def observe(self, addr: int) -> None:
        if self._last_addr is not None and addr - self._last_addr == 8:
            self._sequential += 1
        self._last_addr = addr
        self._seen += 1
        if self._seen >= self.window:
            self.bypass = self._sequential / self._seen >= self.threshold
            self._seen = 0
            self._sequential = 0


class FineGrainedMemoryPath:
    """Fine-grained cache + collection-extended MSHR -> FIM operations."""

    def __init__(
        self,
        cache: BaseCache,
        mshr: CollectionExtendedMSHR,
        locality_monitor: LocalityMonitor | None = None,
    ) -> None:
        self.cache = cache
        self.mshr = mshr
        self.monitor = locality_monitor
        self.fim_ops: list[FimOp] = []
        #: conventional bursts issued while the locality monitor bypasses
        self.bypass_addrs: list[int] = []
        self.bypass_write: list[bool] = []
        self._last_bypass_fill = -1
        self._last_bypass_wb = -1

    def run(self, addrs: np.ndarray, rmw: bool) -> None:
        """Process a batch of 8 B accesses through cache + MSHR."""
        access = self.cache.access
        add_read = self.mshr.add_read
        add_write = self.mshr.add_write
        ops = self.fim_ops
        monitor = self.monitor
        for a in addrs.tolist():
            if monitor is not None:
                monitor.observe(a)
                if monitor.bypass:
                    # Conventional burst fills; consecutive words of the
                    # same 64 B block share one burst.
                    hit, fill_addr, _, wbs = access(a, rmw)
                    if not hit:
                        block = fill_addr & ~63
                        if block != self._last_bypass_fill:
                            self.bypass_addrs.append(block)
                            self.bypass_write.append(False)
                            self._last_bypass_fill = block
                    if wbs:
                        for wb_addr, _ in wbs:
                            block = wb_addr & ~63
                            if block != self._last_bypass_wb:
                                self.bypass_addrs.append(block)
                                self.bypass_write.append(True)
                                self._last_bypass_wb = block
                    continue
            hit, fill_addr, _, wbs = access(a, rmw)
            if not hit:
                issued = add_read(fill_addr)
                if issued:
                    ops.extend(issued)
            if wbs:
                for wb_addr, _ in wbs:
                    issued = add_write(wb_addr)
                    if issued:
                        ops.extend(issued)

    def drain(self) -> tuple[list[FimOp], np.ndarray, np.ndarray]:
        """Take accumulated FIM ops and bypass bursts (and reset)."""
        ops = self.fim_ops
        addrs = np.asarray(self.bypass_addrs, dtype=np.int64)
        writes = np.asarray(self.bypass_write, dtype=bool)
        self.fim_ops = []
        self.bypass_addrs, self.bypass_write = [], []
        return ops, addrs, writes

    def flush(self) -> None:
        """Drain cache dirty state and pending MSHR entries (end of run)."""
        for wb_addr, _ in self.cache.flush():
            issued = self.mshr.add_write(wb_addr)
            if issued:
                self.fim_ops.extend(issued)
        self.fim_ops.extend(self.mshr.flush())
