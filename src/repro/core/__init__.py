"""Piccolo core: the paper's contribution.

- :mod:`repro.core.piccolo_cache` -- the fine-grained split-tag cache of
  Sec. V (Fig. 5b/6): 128 B lines of 8 B sectors with per-sector fg-tags,
  sequential way search, equal way partitioning, LRU or RRIP.
- :mod:`repro.core.collection_mshr` -- the collection-extended MSHR of
  Sec. V-C (Fig. 7): GA-/SC-MSHR halves that batch same-row misses into
  Piccolo-FIM scatter/gather operations.
- :mod:`repro.core.fim` -- a *functional* DRAM device with the offset/data
  buffers and internal controller of Sec. IV (Fig. 4), moving real bytes
  (used by the protocol validator).
- :mod:`repro.core.fim_commands` -- the virtual-row translation of Sec. VI
  (Fig. 8) expressing FIM operations with standard DDR4 commands.
- :mod:`repro.core.memory_path` -- cache + MSHR + DRAM integration used by
  the Piccolo accelerator system.
"""

from repro.core.piccolo_cache import PiccoloCache
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.fim import FimBank, FimChip
from repro.core.fim_commands import VirtualRowMap, gather_sequence, scatter_sequence
from repro.core.memory_path import FineGrainedMemoryPath, ConventionalMemoryPath

__all__ = [
    "PiccoloCache",
    "CollectionExtendedMSHR",
    "FimBank",
    "FimChip",
    "VirtualRowMap",
    "gather_sequence",
    "scatter_sequence",
    "FineGrainedMemoryPath",
    "ConventionalMemoryPath",
]
