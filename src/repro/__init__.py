"""Piccolo (HPCA 2025) reproduction.

A production-quality Python library reproducing *Piccolo: Large-Scale Graph
Processing with Fine-Grained In-Memory Scatter-Gather* (Shin et al., HPCA
2025).  The package contains:

- ``repro.graph`` -- CSR graphs, synthetic generators, dataset registry,
  destination tiling.
- ``repro.algorithms`` -- vertex-centric (Algorithm 1) and edge-centric
  engines with PageRank, BFS, CC, SSSP and SSWP.
- ``repro.dram`` -- the fast row-episode phase model with
  DDR4/LPDDR4/GDDR5/HBM device specs, plus ``repro.dram.engine``, a
  cycle-accurate command-level engine (full JEDEC constraint set,
  refresh, FR-FCFS, FIM virtual-row sequencing) with independent trace
  checkers and cross-validation against the phase model.
- ``repro.core`` -- the paper's contribution: Piccolo-FIM (in-DRAM random
  scatter-gather), the virtual-row DDR4 command translation, Piccolo-cache
  and the collection-extended MSHR.
- ``repro.cache`` -- comparison cache designs (conventional, sectored,
  8B-line, amoeba, scrabble, graphfire).
- ``repro.accel`` -- end-to-end accelerator systems: Graphicionado,
  GraphDyns (SPM/Cache), NMP, PIM and Piccolo.
- ``repro.energy`` -- CACTI-like SRAM, DRAM energy, and area models.
- ``repro.olap`` -- the in-memory database workload of Fig. 19b.
- ``repro.validate`` -- DDR4 protocol checker and the Fig. 9 microbenchmark.
- ``repro.experiments`` -- named configurations and figure runners.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
