"""One-call FIM validation: commands legal, data bit-exact.

Deterministic distillation of the randomized end-to-end suite (see
``tests/test_fim_end_to_end.py``) for the CLI's ``validate`` command:
seeds a functional bank, runs a fixed programme of gathers and
scatters through the Sec. VI virtual-row command sequences, checks
every command against the DDR4 protocol checker, and verifies the
moved data against a shadow array.
"""

from __future__ import annotations

import numpy as np

from repro.core.fim import FimBank
from repro.core.fim_commands import (
    DDRCommand,
    VirtualRowController,
    VirtualRowMap,
    gather_sequence,
    scatter_sequence,
)
from repro.dram.spec import DEVICES, DeviceSpec
from repro.validate.protocol import DDR4ProtocolChecker

_ROWS = 4


def validate_fim_data_path(
    spec: DeviceSpec | None = None, seed: int = 2025
) -> bool:
    """Run the fixed validation programme; True when everything holds."""
    spec = spec if spec is not None else DEVICES["DDR4_2400_x16"]
    rng = np.random.default_rng(seed)
    bank = FimBank(spec, rows=_ROWS)
    for row in range(_ROWS):
        bank.cells[row] = rng.integers(
            0, 1 << 63, size=spec.row_words, dtype=np.uint64
        )
    shadow = bank.cells.copy()

    vmap = VirtualRowMap(physical_rows=_ROWS)
    controller = VirtualRowController(bank, vmap)
    checker = DDR4ProtocolChecker(spec, strict_ras=False)

    programme = []
    for row in range(_ROWS):
        offsets = sorted(
            int(o) for o in rng.choice(spec.row_words, size=8, replace=False)
        )
        values = [int(v) for v in rng.integers(0, 1 << 62, size=8)]
        programme.append(("gather", row, offsets, values))
        programme.append(("scatter", row, offsets, values))
        programme.append(("gather", row, offsets, values))

    t = 0.0
    open_row = None
    use_y = True
    for kind, row, offsets, values in programme:
        if open_row != row:
            if open_row is not None:
                t += max(spec.tRAS, spec.fim_internal_window)
                controller.handle(DDRCommand(t, "PRE", 0))
                checker.check(DDRCommand(t, "PRE", 0))
                t += spec.tRP
            controller.handle(DDRCommand(t, "ACT", 0, row=row))
            checker.check(
                DDRCommand(t, "ACT", 0,
                           row=vmap.row_y if use_y else vmap.row_z)
            )
            t += spec.tRCD
            open_row = row
        if kind == "gather":
            cmds = gather_sequence(spec, vmap, 0, offsets, start_ns=t,
                                   use_row_y=use_y)
        else:
            cmds = scatter_sequence(spec, vmap, 0, offsets, values,
                                    start_ns=t, use_row_y=use_y)
        data = None
        for cmd in cmds:
            checker.check(cmd)
            out = controller.handle(cmd)
            if out is not None:
                data = out
        t = cmds[-1].time_ns + spec.tCCD
        use_y = not use_y
        if kind == "gather":
            expected = [int(shadow[row][o]) for o in offsets]
            if data != expected:
                return False
        else:
            for offset, value in zip(offsets, values):
                shadow[row][offset] = value
    return checker.commands_checked > 0
