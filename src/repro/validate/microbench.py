"""Strided-read microbenchmark (Fig. 9).

Reads a fixed volume of 8 B elements at a given stride, either confined to
one open row per bank ("single row", Fig. 9a) or laid out naturally
across rows ("multi row", Fig. 9b), and compares conventional burst reads
against Piccolo-FIM gathers on the same timing model.

Expected shape (paper): single-row speedup approaches the theoretical 4x
at stride 8 (one element per 64 B burst); stride 4 halves the baseline
penalty (two elements share a burst); multi-row speedups are lower
because activations occupy part of the time.

The FPGA platform's memory controller (PiDRAM-style) is a simple in-order
design, so row activations are *not* overlapped with transfers; the
timing here therefore adds the serial activation cost on top of the
burst-transfer time, which is what makes the multi-row case slower
(Fig. 9b) while leaving the single-row case at the theoretical gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.spec import DRAMConfig, default_config
from repro.dram.system import DRAMModel

#: paper sweep (stride in 8 B words)
STRIDES = (4, 8, 16, 32)


@dataclass(frozen=True)
class MicrobenchResult:
    """One (stride, layout) cell of Fig. 9."""

    stride_words: int
    single_row: bool
    conventional_ns: float
    piccolo_ns: float

    @property
    def speedup(self) -> float:
        return self.conventional_ns / self.piccolo_ns


def _element_addrs(
    total_bytes: int, stride_words: int, single_row: bool, config: DRAMConfig
) -> np.ndarray:
    """Addresses of the strided elements.

    ``single_row`` folds the walk so each bank stays within one row (the
    data "fits into open rows of the banks", Fig. 9a); otherwise the
    elements spread naturally across rows.
    """
    n_elements = total_bytes // (stride_words * 8)
    idx = np.arange(n_elements, dtype=np.int64)
    addrs = idx * stride_words * 8
    if single_row:
        spec = config.spec
        # Fold: keep the column walk, rotate banks via the natural bank
        # bits, but pin the row bits to zero.
        window = (
            config.channels * spec.row_bytes
            * spec.banks_per_rank * config.ranks
        )
        addrs = addrs % window
    return addrs


def strided_microbenchmark(
    stride_words: int,
    single_row: bool,
    total_bytes: int = 16 * 1024 * 1024,
    config: DRAMConfig | None = None,
) -> MicrobenchResult:
    """Run one Fig. 9 cell (16 MB of data at the given stride)."""
    if stride_words < 1:
        raise ValueError("stride must be >= 1 word")
    config = config if config is not None else default_config()
    spec = config.spec
    addrs = _element_addrs(total_bytes, stride_words, single_row, config)
    model = DRAMModel(config)

    # Serial activation cost (in-order FPGA controller): one tRC + tRCD
    # per distinct row visit, counted per bank in walk order.
    bank, row = model.mapper.bank_key_many(addrs)
    order = np.argsort(bank, kind="stable")
    bank_o, row_o = bank[order], row[order]
    transition = np.empty(bank_o.size, dtype=bool)
    transition[0] = True
    transition[1:] = (bank_o[1:] != bank_o[:-1]) | (row_o[1:] != row_o[:-1])
    acts = int(np.count_nonzero(transition))
    act_ns = acts * (spec.tRP + spec.tRCD)

    # Conventional: one burst per *distinct* 64 B block in walk order.
    blocks = addrs >> 6
    keep = np.empty(blocks.size, dtype=bool)
    keep[0] = True
    keep[1:] = blocks[1:] != blocks[:-1]
    conv_bursts = int(np.count_nonzero(keep))
    conv_ns = conv_bursts * spec.tBURST / config.channels + act_ns

    # Piccolo: the collection-extended MSHR accumulates same-row elements
    # (not necessarily consecutive -- banks interleave under the default
    # mapping) and fires one operation per items_per_op offsets.
    items = config.fim_items_per_op
    key = row * config.total_banks + bank
    _, counts = np.unique(key, return_counts=True)
    n_ops = int(np.sum((counts + items - 1) // items))
    op_bursts = config.fim_offset_bursts + config.fim_data_bursts
    fim_ns = n_ops * op_bursts * spec.tBURST / config.channels + act_ns
    return MicrobenchResult(
        stride_words=stride_words,
        single_row=single_row,
        conventional_ns=conv_ns,
        piccolo_ns=fim_ns,
    )


def sweep(
    total_bytes: int = 16 * 1024 * 1024, config: DRAMConfig | None = None
) -> list[MicrobenchResult]:
    """The full Fig. 9 grid: strides x {single row, multi row}."""
    results = []
    for single in (True, False):
        for stride in STRIDES:
            results.append(
                strided_microbenchmark(stride, single, total_bytes, config)
            )
    return results
