"""DDR4 command-timing checker (the FPGA-emulation substitute).

Validates a stream of :class:`~repro.core.fim_commands.DDRCommand`
against per-bank JEDEC constraints:

==========  ==================================================
constraint  meaning
==========  ==================================================
tRCD        ACT -> first RD/WR to the bank
tRP         PRE -> next ACT
tRAS        ACT -> PRE
tCCD        RD/WR -> next RD/WR (column-to-column)
tWR         end of write burst -> PRE (write recovery)
==========  ==================================================

Because Piccolo's virtual rows are ordinary rows from the controller's
perspective, a legal Piccolo sequence must pass with *zero* knowledge of
FIM -- which is exactly what this checker proves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fim_commands import DDRCommand
from repro.dram.spec import DeviceSpec


class ProtocolViolation(AssertionError):
    """A DDR timing or state violation in a command stream."""


@dataclass
class _BankTiming:
    open_row: int | None = None
    last_act: float = -1e18
    last_pre: float = -1e18
    last_col: float = -1e18
    last_wr_data_end: float = -1e18


@dataclass
class DDR4ProtocolChecker:
    """Stateful checker; feed commands in time order via :meth:`check`."""

    spec: DeviceSpec
    strict_ras: bool = True
    _banks: dict[int, _BankTiming] = field(default_factory=dict)
    commands_checked: int = 0

    def _bank(self, index: int) -> _BankTiming:
        return self._banks.setdefault(index, _BankTiming())

    def check(self, cmd: DDRCommand) -> None:
        """Validate one command; raises :class:`ProtocolViolation`."""
        spec = self.spec
        bank = self._bank(cmd.bank)
        t = cmd.time_ns
        eps = 1e-9
        if cmd.kind == "ACT":
            if bank.open_row is not None:
                raise ProtocolViolation(
                    f"ACT @{t}: bank {cmd.bank} already has row "
                    f"{bank.open_row} open"
                )
            if t + eps < bank.last_pre + spec.tRP:
                raise ProtocolViolation(
                    f"ACT @{t}: violates tRP (PRE at {bank.last_pre})"
                )
            bank.open_row = cmd.row
            bank.last_act = t
        elif cmd.kind == "PRE":
            if self.strict_ras and t + eps < bank.last_act + spec.tRAS:
                raise ProtocolViolation(
                    f"PRE @{t}: violates tRAS (ACT at {bank.last_act})"
                )
            if t + eps < bank.last_wr_data_end + spec.tWR:
                raise ProtocolViolation(
                    f"PRE @{t}: violates tWR "
                    f"(write data ended {bank.last_wr_data_end})"
                )
            bank.open_row = None
            bank.last_pre = t
        elif cmd.kind in ("RD", "WR"):
            if bank.open_row is None:
                raise ProtocolViolation(f"{cmd.kind} @{t}: no open row")
            if cmd.row is not None and cmd.row != bank.open_row:
                raise ProtocolViolation(
                    f"{cmd.kind} @{t}: row {cmd.row} is not the open row "
                    f"{bank.open_row}"
                )
            if t + eps < bank.last_act + spec.tRCD:
                raise ProtocolViolation(
                    f"{cmd.kind} @{t}: violates tRCD (ACT at {bank.last_act})"
                )
            if t + eps < bank.last_col + spec.tCCD:
                raise ProtocolViolation(
                    f"{cmd.kind} @{t}: violates tCCD "
                    f"(previous column at {bank.last_col})"
                )
            bank.last_col = t
            if cmd.kind == "WR":
                bank.last_wr_data_end = t + spec.tBURST
        else:  # non-standard opcode
            raise ProtocolViolation(f"non-standard command {cmd.kind!r}")
        self.commands_checked += 1

    def check_sequence(self, commands: list[DDRCommand]) -> None:
        """Validate an entire stream (must be time-ordered per bank)."""
        for cmd in commands:
            self.check(cmd)

    def window_covers_internal_op(self, items: int) -> bool:
        """Whether the virtual-row gap hides ``items`` column accesses
        (the Sec. VI feasibility condition)."""
        return items * self.spec.tCCD <= self.spec.fim_internal_window
