"""Validation: DDR4 protocol checking and the Fig. 9 microbenchmark.

The paper validates Piccolo-FIM's DDR4 compatibility on an FPGA platform
(ALVEO U280 with a DDR4 memory controller, Sec. VII-B).  Offline, the
equivalent evidence is produced by :class:`DDR4ProtocolChecker`: replay
the virtual-row command sequences of Sec. VI against the functional FIM
device, asserting that (a) only standard commands appear, (b) every JEDEC
timing constraint holds, (c) the internal scatter/gather fits inside the
tWR + tRP + tRCD window, and (d) the returned data is bit-exact.
"""

from repro.validate.protocol import DDR4ProtocolChecker, ProtocolViolation
from repro.validate.microbench import strided_microbenchmark, MicrobenchResult

__all__ = [
    "DDR4ProtocolChecker",
    "ProtocolViolation",
    "strided_microbenchmark",
    "MicrobenchResult",
]
