"""Stdlib HTTP transport for the experiment service.

A :class:`~http.server.ThreadingHTTPServer` whose handler serializes
the ``(status, payload)`` tuples returned by
:class:`repro.service.core.ExperimentService` -- the whole wire
contract lives in the core, so this fallback and the FastAPI app
(:mod:`repro.service.fastapi_app`) are interchangeable.  Threading
matters even though simulations queue on a worker pool: concurrent
clients must be able to POST/poll while a cell runs, and the
single-flight dedup is only observable when requests overlap.

No dependencies beyond the standard library: tier-1 tests and the CI
service smoke always have a servable backend.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service.core import ExperimentService

#: cell digests are 32 lowercase hex chars (blake2b-16)
_DIGEST_RE = re.compile(r"^/experiments/([0-9a-f]{32})$")

#: request bodies larger than this are rejected outright (the config
#: schema is a handful of scalar knobs; nothing legitimate is near 1 MB)
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    # without TCP_NODELAY, Nagle + delayed ACK adds ~40 ms to every
    # keep-alive response -- dwarfing the actual cache-hit work
    disable_nagle_algorithm = True

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            return None, (413, {"error": "request body too large"})
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None, (400, {"error": "empty request body; send a "
                                "JSON experiment config"})
        try:
            return json.loads(raw), None
        except ValueError as exc:
            return None, (400, {"error": f"request body is not JSON: {exc}"})

    # -- routes ---------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        if urlparse(self.path).path != "/experiments":
            self._reply(404, {"error": f"no POST route {self.path!r}"})
            return
        payload, error = self._read_json()
        if error is not None:
            self._reply(*error)
            return
        self._reply(*self.service.submit(payload))

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        parsed = urlparse(self.path)
        path = parsed.path
        match = _DIGEST_RE.match(path)
        if match:
            self._reply(*self.service.status(match.group(1)))
        elif path == "/cache/stats":
            self._reply(*self.service.cache_stats())
        elif path == "/trajectory":
            query = parse_qs(parsed.query)
            prefix = query.get("prefix", [None])[0]
            self._reply(*self.service.trajectory(prefix))
        elif path == "/healthz":
            self._reply(*self.service.health())
        elif path.startswith("/experiments/"):
            self._reply(400, {
                "error": "experiment digests are 32 hex chars, got "
                f"{path.removeprefix('/experiments/')!r}"
            })
        else:
            self._reply(404, {"error": f"no GET route {path!r}"})


class ExperimentHTTPServer(ThreadingHTTPServer):
    """Threading server bound to one :class:`ExperimentService`."""

    daemon_threads = True

    def __init__(self, address, service: ExperimentService,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ExperimentHTTPServer:
    """Bind (but do not start) the stdlib server; ``port=0`` picks a
    free ephemeral port (``server.server_address`` has the real one)."""
    return ExperimentHTTPServer((host, port), service, verbose=verbose)


def serve(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    verbose: bool = True,
) -> None:
    """Blocking serve loop (the ``repro serve`` CLI entry point)."""
    server = make_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro experiment service on http://{bound_host}:{bound_port} "
          f"(store: {service.store.root})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()


__all__ = ["ExperimentHTTPServer", "MAX_BODY_BYTES", "make_server", "serve"]
