"""Long-lived experiment service with a content-addressed result cache.

The serving story on top of the offline sweep stack: configs POST to a
long-lived HTTP server, canonicalize through the repo-wide cell-digest
machinery, and repeat requests are answered from the cache instead of
re-simulating.  See ``docs/SERVICE.md`` for the endpoint reference and
``repro serve`` for the CLI entry point.

Layers:

- :mod:`repro.service.core` -- framework-agnostic service (cache
  probes, single-flight dedup, background job pool); the wire contract.
- :mod:`repro.service.http` -- stdlib ``ThreadingHTTPServer`` backend
  (no dependencies; what tier-1 and CI exercise).
- :mod:`repro.service.fastapi_app` -- optional FastAPI backend (same
  contract, lazily imported, clear error when not installed).
"""

from repro.service.core import (
    DEFAULT_STORE_DIR,
    ExperimentService,
    JOB_STATES,
)
from repro.service.http import make_server, serve

__all__ = [
    "DEFAULT_STORE_DIR",
    "ExperimentService",
    "JOB_STATES",
    "make_server",
    "serve",
]
