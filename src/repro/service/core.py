"""Experiment service core: content-addressed cache + single-flight runs.

:class:`ExperimentService` is the framework-agnostic heart of the
long-lived service.  Both transports -- the stdlib HTTP server
(:mod:`repro.service.http`) and the optional FastAPI app
(:mod:`repro.service.fastapi_app`) -- are thin serializers over the
endpoint methods here, which all return ``(http_status, payload)``
tuples; the wire contract therefore cannot drift between backends.

A ``POST /experiments`` config flows:

1. :func:`repro.experiments.requests.resolve_request` canonicalizes it
   into a :class:`ResolvedCell` with the repo-wide blake2b cell digest
   (the same digest that keys the in-process result memo and the sweep
   checkpoints, so all three caches agree on cell identity).
2. The digest probes the in-process memo
   (:func:`repro.experiments.runner.cached_result`), then the on-disk
   :class:`~repro.experiments.parallel.SweepCheckpointStore` -- the
   content-addressed store, shared with (and warm-started by) any
   earlier sweep that used the same root.  A hit returns the exact
   :meth:`SystemResult.to_record` JSON immediately.
3. A miss enqueues the cell on a background worker pool, with
   **single-flight dedup**: N digest-identical in-flight requests share
   one job and one simulation.  Jobs execute through
   :func:`repro.experiments.parallel.run_cells`, so completed cells are
   checkpointed into the store and installed into the memo exactly the
   way sweep cells are.

Failed jobs keep their error and stay retryable: a later POST of the
same config enqueues a fresh run instead of replaying the failure.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.accel.base import SystemResult
from repro.experiments import parallel, runner
from repro.experiments.parallel import CellOutcome, SweepCheckpointStore
from repro.experiments.requests import (
    RequestError,
    describe_cell,
    resolve_request,
)
from repro.experiments.runner import ResolvedCell

#: default service state directory (checkpoint-store layout inside)
DEFAULT_STORE_DIR = ".repro_service"

#: job lifecycle states reported by ``GET /experiments/{digest}``
JOB_STATES = ("queued", "running", "done", "failed")

#: finished (done/failed) jobs kept for status queries before the
#: oldest are pruned; results themselves persist in the store/memo
MAX_FINISHED_JOBS = 1024


@dataclass
class _Job:
    """One in-flight (or finished) cell run, keyed by cell digest."""

    digest: str
    cell: ResolvedCell
    state: str = "queued"
    error: str | None = None
    outcome: CellOutcome | None = None
    #: monotonic-clock marks for queue/run durations (status payloads)
    enqueued_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job leaves the queue/run states (tests)."""
        return self.done.wait(timeout)


@dataclass
class CacheStats:
    """Service-lifetime counters behind ``GET /cache/stats``."""

    hits_memo: int = 0
    hits_store: int = 0
    misses: int = 0
    single_flight_joined: int = 0
    rejected: int = 0

    def as_dict(self) -> dict:
        hits = self.hits_memo + self.hits_store
        total = hits + self.misses + self.single_flight_joined
        return {
            "hits": {
                "total": hits,
                "memo": self.hits_memo,
                "store": self.hits_store,
            },
            "misses": self.misses,
            "single_flight_joined": self.single_flight_joined,
            "rejected": self.rejected,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }


class ExperimentService:
    """Long-lived experiment server: cache, dedup, background runs.

    Args:
        store_root: checkpoint-store directory -- the persistent
            content-addressed result cache.  Point it at a sweep's
            checkpoint dir to serve that sweep's cells without running
            anything.
        max_workers: background job threads.  The default of 1
            serializes simulations (they are CPU-bound; the HTTP
            threads stay responsive either way).
        workers_per_job: process-pool width handed to ``run_cells`` per
            job; 0 runs the cell in the job thread itself (default --
            a single service cell has nothing to shard).
        trajectory_path: ``BENCH_hotpath.json`` to expose under
            ``GET /trajectory`` (None disables the endpoint's data).
        run_cell: test seam -- replaces the default
            ``run_cells``-backed executor with any
            ``(ResolvedCell) -> CellOutcome`` callable.
    """

    def __init__(
        self,
        store_root: str | pathlib.Path = DEFAULT_STORE_DIR,
        *,
        max_workers: int = 1,
        workers_per_job: int = 0,
        trajectory_path: str | pathlib.Path | None = None,
        run_cell=None,
    ) -> None:
        self.store = SweepCheckpointStore(store_root)
        self.stats = CacheStats()
        self.trajectory_path = (
            pathlib.Path(trajectory_path)
            if trajectory_path is not None else None
        )
        self._workers_per_job = int(workers_per_job)
        self._run_cell = run_cell or self._run_via_run_cells
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(max_workers)),
            thread_name_prefix="repro-service",
        )
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop accepting jobs and wait for running ones to finish."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- default job executor ------------------------------------------
    def _run_via_run_cells(self, cell: ResolvedCell) -> CellOutcome:
        """Run one cell through the sweep orchestrator.

        ``resume=True`` makes re-runs idempotent (a record written by a
        concurrent sweep between enqueue and execution is loaded, not
        recomputed), and completed cells land in the checkpoint store
        and the result memo exactly like sweep cells.
        """
        outcomes = parallel.run_cells(
            [cell.spec],
            workers=self._workers_per_job,
            resume=True,
            checkpoint_dir=self.store.root,
        )
        return outcomes[0]

    def _execute(self, job: _Job) -> None:
        job.state = "running"
        job.started_at = time.monotonic()
        try:
            job.outcome = self._run_cell(job.cell)
            # uniform across executors (the default run_cells path does
            # this itself): later submits of the digest hit the memo
            runner.install_result(job.digest, job.outcome.result)
            job.state = "done"
        except Exception as exc:
            job.error = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            job.state = "failed"
        finally:
            job.finished_at = time.monotonic()
            job.done.set()

    def _prune_finished(self) -> None:
        """Drop the oldest finished jobs past the bound (lock held)."""
        finished = [
            digest for digest, job in self._jobs.items()
            if job.state in ("done", "failed")
        ]
        for digest in finished[: max(0, len(finished) - MAX_FINISHED_JOBS)]:
            del self._jobs[digest]

    # -- cache probes ---------------------------------------------------
    def _lookup(self, digest: str) -> tuple[SystemResult, str] | None:
        """(result, source) from memo or store, else None."""
        hit = runner.cached_result(digest)
        if hit is not None:
            return hit, "memo"
        loaded = self.store.load(digest)
        if loaded is not None:
            result, _record = loaded
            runner.install_result(digest, result)
            return result, "store"
        return None

    # -- endpoints ------------------------------------------------------
    def submit(self, payload: object) -> tuple[int, dict]:
        """``POST /experiments``: cache hit, join, or enqueue."""
        try:
            cell = resolve_request(payload)
        except RequestError as exc:
            self.stats.rejected += 1
            return 400, {"error": str(exc)}
        digest = cell.digest
        assert digest is not None  # resolve_request guarantees it
        with self._lock:
            found = self._lookup(digest)
            if found is not None:
                result, source = found
                if source == "memo":
                    self.stats.hits_memo += 1
                else:
                    self.stats.hits_store += 1
                return 200, {
                    "digest": digest,
                    "status": "done",
                    "cached": True,
                    "source": source,
                    "cell": describe_cell(cell),
                    "result": result.to_record(),
                }
            job = self._jobs.get(digest)
            if job is not None and job.state in ("queued", "running"):
                # single-flight: join the in-flight run
                self.stats.single_flight_joined += 1
                return 202, {
                    "digest": digest,
                    "status": job.state,
                    "cached": False,
                    "joined": True,
                    "location": f"/experiments/{digest}",
                }
            if self._closed:
                return 503, {"error": "service is shutting down"}
            # miss (or retry of a failed job): enqueue a fresh run
            self._prune_finished()
            job = _Job(digest=digest, cell=cell)
            self._jobs[digest] = job
            self.stats.misses += 1
            self._executor.submit(self._execute, job)
        return 202, {
            "digest": digest,
            "status": "queued",
            "cached": False,
            "joined": False,
            "location": f"/experiments/{digest}",
        }

    def status(self, digest: str) -> tuple[int, dict]:
        """``GET /experiments/{digest}``: job state or cached record."""
        with self._lock:
            job = self._jobs.get(digest)
            if job is None:
                found = self._lookup(digest)
                if found is None:
                    return 404, {
                        "error": f"unknown experiment digest {digest!r}",
                        "hint": "POST the config to /experiments first",
                    }
        if job is None:
            # served purely from the cache (e.g. a sweep's checkpoint)
            result, source = found
            return 200, {
                "digest": digest,
                "status": "done",
                "source": source,
                "result": result.to_record(),
            }
        payload: dict = {
            "digest": digest,
            "status": job.state,
            "cell": describe_cell(job.cell),
        }
        if job.state == "queued":
            payload["queued_seconds"] = round(
                time.monotonic() - job.enqueued_at, 3
            )
        elif job.state == "running":
            assert job.started_at is not None
            payload["running_seconds"] = round(
                time.monotonic() - job.started_at, 3
            )
        elif job.state == "done":
            outcome = job.outcome
            assert outcome is not None
            payload["result"] = outcome.result.to_record()
            payload["source"] = outcome.source
            payload["seconds"] = round(outcome.seconds, 4)
            payload["rss_mb"] = round(outcome.rss_mb, 1)
        else:  # failed
            payload["error"] = job.error
            payload["retryable"] = True
            payload["hint"] = (
                "POST the same config again to enqueue a fresh run"
            )
        return 200, payload

    def cache_stats(self) -> tuple[int, dict]:
        """``GET /cache/stats``: counters, job states, store size."""
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            payload = {
                "cache": self.stats.as_dict(),
                "jobs": by_state,
                "store": {
                    "root": str(self.store.root),
                    "records": len(self.store),
                },
            }
        return 200, payload

    def trajectory(self, prefix: str | None = None) -> tuple[int, dict]:
        """``GET /trajectory``: BENCH_hotpath.json cells for dashboards.

        Returns, per cell (optionally filtered by name ``prefix``), the
        recorded series of ``(label, seconds)`` across trajectory
        points -- the data the perf dashboards plot.
        """
        if self.trajectory_path is None or not self.trajectory_path.exists():
            return 200, {"trajectory": None, "cells": {}}
        try:
            report = json.loads(self.trajectory_path.read_text())
        except (OSError, ValueError) as exc:
            return 500, {"error": f"unreadable trajectory file: {exc}"}
        series: dict[str, list[dict]] = {}
        for point in report.get("trajectory", []):
            for name, seconds in point.get("times", {}).items():
                if prefix is not None and not name.startswith(prefix):
                    continue
                series.setdefault(name, []).append({
                    "label": point.get("label"),
                    "mode": point.get("mode"),
                    "timestamp": point.get("timestamp"),
                    "seconds": seconds,
                })
        return 200, {
            "trajectory": str(self.trajectory_path),
            "prefix": prefix,
            "cells": series,
        }

    def health(self) -> tuple[int, dict]:
        """``GET /healthz``: liveness probe."""
        return 200, {"ok": True, "closed": self._closed}


__all__ = [
    "CacheStats",
    "DEFAULT_STORE_DIR",
    "ExperimentService",
    "JOB_STATES",
]
