"""Optional FastAPI transport for the experiment service.

FastAPI is *not* a dependency of this repo: the factory imports it
lazily and raises a clear error when it is missing, and the stdlib
server (:mod:`repro.service.http`) serves the identical contract
without it.  Both transports serialize the same
``(status, payload)`` tuples from
:class:`repro.service.core.ExperimentService`, so choosing a backend
never changes a response body -- only the serving machinery (uvicorn's
event loop + OpenAPI docs vs. a threading stdlib server).
"""

from __future__ import annotations

from repro.service.core import ExperimentService


def fastapi_available() -> bool:
    """True when the optional FastAPI backend can be imported."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_fastapi_app(service: ExperimentService):
    """Build a FastAPI app over ``service`` (raises without fastapi).

    Routes mirror the stdlib server exactly: ``POST /experiments``,
    ``GET /experiments/{digest}``, ``GET /cache/stats``,
    ``GET /trajectory``, ``GET /healthz``.
    """
    try:
        from fastapi import Body, FastAPI
        from fastapi.responses import JSONResponse
    except ImportError as exc:
        raise RuntimeError(
            "the FastAPI backend needs the optional 'fastapi' package "
            "(pip install fastapi uvicorn); the stdlib backend "
            "(repro.service.http / `repro serve --backend stdlib`) "
            "serves the same contract without it"
        ) from exc

    app = FastAPI(
        title="repro experiment service",
        description=(
            "Content-addressed experiment cache over the Piccolo "
            "reproduction's sweep runner; see docs/SERVICE.md"
        ),
    )

    def _respond(status_payload: tuple[int, dict]) -> JSONResponse:
        status, payload = status_payload
        return JSONResponse(status_code=status, content=payload)

    @app.post("/experiments")
    def submit(config: dict = Body(...)) -> JSONResponse:
        return _respond(service.submit(config))

    @app.get("/experiments/{digest}")
    def status(digest: str) -> JSONResponse:
        return _respond(service.status(digest))

    @app.get("/cache/stats")
    def cache_stats() -> JSONResponse:
        return _respond(service.cache_stats())

    @app.get("/trajectory")
    def trajectory(prefix: str | None = None) -> JSONResponse:
        return _respond(service.trajectory(prefix))

    @app.get("/healthz")
    def health() -> JSONResponse:
        return _respond(service.health())

    return app


def serve_fastapi(
    service: ExperimentService, host: str, port: int
) -> None:
    """Run the FastAPI app under uvicorn (raises without uvicorn)."""
    try:
        import uvicorn
    except ImportError as exc:
        raise RuntimeError(
            "the FastAPI backend needs 'uvicorn' to serve "
            "(pip install uvicorn); use --backend stdlib instead"
        ) from exc
    uvicorn.run(create_fastapi_app(service), host=host, port=port)


__all__ = ["create_fastapi_app", "fastapi_available", "serve_fastapi"]
