"""Accelerator pipeline timing (Sec. VII-A: 8 PEs x 8-way SIMD @ 1 GHz).

With aggressive prefetching the pipeline overlaps compute with memory, so
a tile's duration is ``max(compute, memory)`` (Sec. II-B: "with
sufficient prefetching to hide latencies, the bottleneck moves to the
memory bandwidth").  Disabling prefetching (Fig. 20b) limits the
prefetcher to a small number of outstanding line fetches, capping the
effective stream bandwidth at ``outstanding x 64 B / latency``.

The optional crossbar model resolves the "crossbar switch for parallel
atomic updates" of Sec. II-B: processed edges are routed to updater
units by destination-vertex hash, so a hot destination serialises on
its updater lane while uniform traffic keeps all lanes busy.  The flat
model assumes a conflict-free crossbar; the ablation bench quantifies
the difference on power-law vs uniform graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PipelineConfig:
    """Compute-side parameters of the accelerator."""

    num_pes: int = 8
    simd_width: int = 8
    freq_ghz: float = 1.0
    prefetch: bool = True
    #: model crossbar/updater contention from the destination
    #: distribution instead of assuming a conflict-free crossbar
    crossbar_model: bool = False
    #: outstanding topology fetches without prefetching (Fig. 20b).
    #: Calibrated so the GM slowdown lands in the paper's ~23 % regime:
    #: 7 x 64 B / ~31 ns idle latency ~= 14.5 GB/s effective stream rate.
    no_prefetch_outstanding: int = 7
    #: pipeline fill/drain per tile pass, in cycles
    tile_overhead_cycles: int = 64

    @property
    def lanes(self) -> int:
        return self.num_pes * self.simd_width

    def compute_ns(self, edges: int, vertex_ops: int) -> float:
        """Cycles to process ``edges`` and apply ``vertex_ops`` vertices."""
        cycles = (
            edges / self.lanes
            + vertex_ops / self.lanes
            + self.tile_overhead_cycles
        )
        return cycles / self.freq_ghz

    def compute_ns_for_tile(self, edge_dst: np.ndarray,
                            vertex_ops: int) -> float:
        """Tile compute time from the actual destination distribution.

        The process stage streams edges at ``lanes`` per cycle; the
        update stage routes each edge through the crossbar to the
        updater owning ``dst % num_pes``, each updater consuming
        ``simd_width`` edges per cycle.  The stages are pipelined, so
        the tile takes the slower of the two.
        """
        edges = int(edge_dst.size)
        if not self.crossbar_model or edges == 0:
            return self.compute_ns(edges, vertex_ops)
        lane_load = np.bincount(
            (edge_dst % self.num_pes).astype(np.int64),
            minlength=self.num_pes,
        )
        update_cycles = float(lane_load.max()) / self.simd_width
        process_cycles = edges / self.lanes
        cycles = (
            max(process_cycles, update_cycles)
            + vertex_ops / self.lanes
            + self.tile_overhead_cycles
        )
        return cycles / self.freq_ghz

    def stream_bandwidth_scale(self, latency_ns: float, peak_gbps: float) -> float:
        """Fraction of peak usable by the topology stream.

        1.0 with prefetching; otherwise limited by the outstanding-request
        window (``n x 64 B / latency``).
        """
        if self.prefetch:
            return 1.0
        effective = self.no_prefetch_outstanding * 64.0 / latency_ns  # GB/s
        return min(1.0, effective / peak_gbps)
