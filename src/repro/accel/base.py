"""Shared result container and base class for accelerator systems."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.accel.pipeline import PipelineConfig
from repro.dram.spec import DRAMConfig, default_config
from repro.dram.system import DRAMModel, PhaseStats


@dataclass
class SystemResult:
    """Everything the figures need from one (system, algorithm, dataset) run."""

    system: str
    algorithm: str
    dataset: str
    # timing
    total_ns: float = 0.0
    compute_ns: float = 0.0
    memory_ns: float = 0.0
    # physical memory activity (aggregated PhaseStats)
    dram: PhaseStats = field(default_factory=PhaseStats)
    # traffic classification (Fig. 3 / Fig. 12)
    useful_bytes: float = 0.0
    stream_read_bytes: float = 0.0
    stream_write_bytes: float = 0.0
    random_read_bytes: float = 0.0
    random_write_bytes: float = 0.0
    # workload shape
    iterations: int = 0
    edges_processed: int = 0
    vertex_applies: int = 0
    tile_width: int = 0
    num_tiles: int = 0
    # component stats (optional, system-dependent)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_accesses: int = 0
    mshr_ops: int = 0
    mshr_forwarded: int = 0
    #: on-chip SRAM budget modelled for this system (energy/area)
    onchip_bytes: int = 0

    @property
    def cycles(self) -> float:
        """Total cycles at the 1 GHz accelerator clock."""
        return self.total_ns  # 1 cycle == 1 ns at 1 GHz

    @property
    def offchip_bytes(self) -> float:
        return float(self.dram.read_bytes + self.dram.write_bytes)

    @property
    def offchip_bandwidth_gbps(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.offchip_bytes / self.total_ns

    @property
    def internal_bandwidth_gbps(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.dram.internal_words * 8.0 / self.total_ns

    @property
    def useful_fraction(self) -> float:
        total = self.offchip_bytes
        return self.useful_bytes / total if total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_accesses == 0:
            return 0.0
        return self.cache_hits / self.cache_accesses

    # -- checkpoint serialisation --------------------------------------
    def to_record(self) -> dict:
        """Plain-data form of the result (JSON-safe: strs, ints, floats).

        Exact round-trip: Python's JSON encoder emits shortest-roundtrip
        float literals, so ``from_record(json.loads(json.dumps(r)))``
        reproduces every counter and timing bit-for-bit -- the property
        the sweep checkpoints and the parallel-equivalence tests rely
        on.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_record(cls, record: dict) -> "SystemResult":
        """Rebuild a result from :meth:`to_record` output."""
        data = dict(record)
        data["dram"] = PhaseStats(**data.get("dram", {}))
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SystemResult record fields: {sorted(unknown)}"
            )
        return cls(**data)


class AcceleratorSystem:
    """Base class: owns the DRAM model and the pipeline configuration."""

    name = "base"

    def __init__(
        self,
        dram_config: DRAMConfig | None = None,
        pipeline: PipelineConfig | None = None,
    ) -> None:
        self.dram_config = dram_config if dram_config is not None else default_config()
        self.pipeline = pipeline if pipeline is not None else PipelineConfig()
        self.dram = DRAMModel(self.dram_config)

    # ------------------------------------------------------------------
    def _stream_scale(self) -> float:
        """Stream-bandwidth derating for the no-prefetch mode (Fig. 20b)."""
        return self.pipeline.stream_bandwidth_scale(
            self.dram.latency_ns(), self.dram_config.peak_bandwidth_gbps
        )

    def effective_stream_bytes(self, nbytes: float) -> float:
        """Bytes inflated to model reduced stream bandwidth when the
        prefetcher is disabled (same bus occupancy accounting)."""
        scale = self._stream_scale()
        return nbytes / scale if scale < 1.0 else nbytes

    # ------------------------------------------------------------------
    def _phase_path(self):
        """The memory path feeding the per-tile/block phase, if any."""
        return getattr(self, "path", None)

    def _phase_streaming(self) -> bool:
        """Chunk-streamed DRAM-phase evaluation: on for systems with a
        cached random-access path, when ``stream_phase`` says so (None =
        auto: enabled whenever tile chunking is on)."""
        path = self._phase_path()
        if path is None:
            return False
        stream_phase = getattr(self, "stream_phase", None)
        if stream_phase is not None:
            return stream_phase
        return path.chunk_size is not None

    def run(self, graph, algorithm: str, max_iterations: int = 40) -> SystemResult:
        raise NotImplementedError
