"""End-to-end accelerator systems (Sec. VII-A baselines + Piccolo).

Every system follows the template of Fig. 1: a prefetcher streams topology
and sequential vertex properties, PEs process edges, and an updater issues
the random temporary-property accesses, which are the part each system
handles differently:

================== ==============================================
Graphicionado      scratchpad, perfect tiling, applies whole tiles
GraphDyns (SPM)    scratchpad, perfect tiling, applies touched only
GraphDyns (Cache)  conventional 64 B cache, tuned tile width
NMP                fine-grained cache + MSHR, rank-level gathers
PIM                no on-chip locality; per-edge in-memory atomics
Piccolo            Piccolo-cache + collection-extended MSHR + FIM
================== ==============================================
"""

from repro.accel.layout import MemoryLayout
from repro.accel.pipeline import PipelineConfig
from repro.accel.base import SystemResult, AcceleratorSystem
from repro.accel.systems import (
    GraphicionadoSystem,
    GraphDynsSPMSystem,
    GraphDynsCacheSystem,
    NMPSystem,
    PIMSystem,
    PiccoloSystem,
    SYSTEMS,
    make_system,
)
from repro.accel.tuner import tune_tile_scale

__all__ = [
    "MemoryLayout",
    "PipelineConfig",
    "SystemResult",
    "AcceleratorSystem",
    "GraphicionadoSystem",
    "GraphDynsSPMSystem",
    "GraphDynsCacheSystem",
    "NMPSystem",
    "PIMSystem",
    "PiccoloSystem",
    "SYSTEMS",
    "make_system",
    "tune_tile_scale",
]
