"""Physical placement of the graph arrays in the DRAM address space.

The traffic accounting of Sec. II-B charges three streams: topology (row
pointers ~ |V| per tile, column indices ~ |E|), sequential source
properties, and random temporary-property accesses.  Element sizes follow
the paper's 4 B/8 B vertex data; we use 8 B properties, 8 B row-pointer
entries and 8 B packed edge records (destination id + weight).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PROP_BYTES = 8
PTR_BYTES = 8
EDGE_BYTES = 8


@dataclass(frozen=True)
class MemoryLayout:
    """Base addresses of the graph arrays (1 GB apart by default).

    Only ``vtemp_base`` matters microarchitecturally (random accesses are
    cache-managed); the others are streamed and charged by byte count.
    """

    vtemp_base: int = 0x4000_0000
    vprop_base: int = 0x8000_0000
    indptr_base: int = 0xC000_0000
    edges_base: int = 0x1_0000_0000

    def vtemp_addrs(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Byte addresses of Vtemp[v] for an id array (the random stream)."""
        return self.vtemp_base + np.asarray(vertex_ids, dtype=np.int64) * PROP_BYTES

    def vprop_addrs(self, vertex_ids: np.ndarray) -> np.ndarray:
        """Byte addresses of Vprop[v] (used by edge-centric systems)."""
        return self.vprop_base + np.asarray(vertex_ids, dtype=np.int64) * PROP_BYTES
