"""Edge-centric accelerator systems (Sec. VII-H, Fig. 19a).

Edge-centric accelerators (ForeGraph/Fabgraph-style) stream the edge list
in grid blocks and keep the current source-property tile and
destination-temporary tile on chip:

- :class:`ECConventionalSystem`: scratchpad halves for the two tiles;
  every block pass reloads its source tile sequentially, every column
  pass settles its destination tile -- the repetition cost of the grid.
- :class:`ECPiccoloSystem`: Piccolo-cache + collection-extended MSHR over
  much larger blocks; both the source reads and destination updates
  become fine-grained random accesses served by FIM gathers.
"""

from __future__ import annotations

from repro.accel.base import AcceleratorSystem, SystemResult
from repro.accel.layout import EDGE_BYTES, MemoryLayout, PROP_BYTES
from repro.accel.pipeline import PipelineConfig
from repro.algorithms import make_algorithm
from repro.algorithms.ecm import EdgeCentricEngine
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import FineGrainedMemoryPath
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.spec import DRAMConfig
from repro.graph.csr import CSRGraph
from repro.utils.units import ceil_div


class _ECSystem(AcceleratorSystem):
    """Shared scaffolding for the two edge-centric systems."""

    name = "EC base"

    def __init__(
        self,
        dram_config: DRAMConfig | None = None,
        pipeline: PipelineConfig | None = None,
        onchip_bytes: int = 4096,
        tile_scale: int = 1,
        layout: MemoryLayout | None = None,
        chunk_size: int | None = None,
        replay_capacity: int | None = None,
        stream_phase: bool | None = None,
    ) -> None:
        super().__init__(dram_config, pipeline)
        self.onchip_bytes = onchip_bytes
        self.tile_scale = tile_scale
        self.layout = layout if layout is not None else MemoryLayout()
        #: memory-path knobs (scale-profile driven; None = module
        #: defaults), mirroring the vertex-centric systems
        self.chunk_size = chunk_size
        self.replay_capacity = replay_capacity
        #: chunk-streamed DRAM-phase evaluation (None = auto: on when
        #: tile chunking is on), mirroring the vertex-centric systems
        self.stream_phase = stream_phase

    def tile_widths(self, graph: CSRGraph) -> tuple[int, int]:
        """(source, destination) tile widths in vertices."""
        half = max(1, self.onchip_bytes // 2 // PROP_BYTES)
        width = min(graph.num_vertices, half * self.tile_scale)
        return width, width

    def run(
        self, graph: CSRGraph, algorithm: str, max_iterations: int = 40
    ) -> SystemResult:
        spec = make_algorithm(algorithm, graph)
        src_w, dst_w = self.tile_widths(graph)
        engine = EdgeCentricEngine(spec, src_w, dst_w)
        result = SystemResult(
            system=self.name,
            algorithm=algorithm,
            dataset=graph.name,
            tile_width=dst_w,
            num_tiles=engine.num_dst_tiles,
            onchip_bytes=self.onchip_bytes,
        )
        result.dram._burst_bytes = self.dram_config.spec.burst_bytes
        self.setup(graph)
        for trace in engine.run_iter(max_iterations):
            self._run_iteration(trace, result)
            result.iterations += 1
        self.finish(result)
        return result

    def setup(self, graph: CSRGraph) -> None:
        """Hook for building on-chip state."""

    def finish(self, result: SystemResult) -> None:
        result.useful_bytes += (
            result.stream_read_bytes + result.stream_write_bytes
        )

    def _charge_phase(self, result, compute_ns, **phase_kwargs) -> None:
        phase = self.dram.phase(**phase_kwargs)
        self._merge_phase(result, compute_ns, phase)

    def _merge_phase(self, result, compute_ns, phase) -> None:
        result.compute_ns += compute_ns
        result.memory_ns += phase.time_ns
        result.total_ns += max(compute_ns, phase.time_ns)
        phase.time_ns = 0.0
        result.dram.merge(phase)


class ECConventionalSystem(_ECSystem):
    """Edge-centric with scratchpad tiles and a conventional memory system."""

    name = "EC Conventional"

    def _run_iteration(self, trace, result) -> None:
        for block in trace.blocks:
            # Stream the block's edges and reload the source tile.
            stream_rd = (
                block.num_edges * EDGE_BYTES
                + (block.src_hi - block.src_lo) * PROP_BYTES
            )
            result.stream_read_bytes += stream_rd
            compute = self.pipeline.compute_ns(block.num_edges, 0)
            result.edges_processed += block.num_edges
            self._charge_phase(
                result, compute,
                stream_read_bytes=self.effective_stream_bytes(stream_rd),
            )
        for apply_dst in trace.apply_dst:
            if apply_dst.size == 0:
                continue
            # Column settle: apply reads/writes Vprop for the tile.
            stream_rd = apply_dst.size * PROP_BYTES
            stream_wr = apply_dst.size * PROP_BYTES
            result.stream_read_bytes += stream_rd
            result.stream_write_bytes += stream_wr
            compute = self.pipeline.compute_ns(0, int(apply_dst.size))
            result.vertex_applies += int(apply_dst.size)
            self._charge_phase(
                result, compute,
                stream_read_bytes=self.effective_stream_bytes(stream_rd),
                stream_write_bytes=stream_wr,
            )


class ECPiccoloSystem(_ECSystem):
    """Edge-centric on Piccolo: fine-grained random access to both the
    source properties and the destination temporaries."""

    name = "EC Piccolo"

    def __init__(
        self,
        *args,
        cache_ways: int = 8,
        mshr_entries: int = 64,
        fg_tag_bits: int = 4,
        tile_scale: int = 8,
        **kwargs,
    ) -> None:
        super().__init__(*args, tile_scale=tile_scale, **kwargs)
        self.cache_ways = cache_ways
        self.mshr_entries = mshr_entries
        self.fg_tag_bits = fg_tag_bits
        self.path: FineGrainedMemoryPath | None = None

    def setup(self, graph: CSRGraph) -> None:
        cache = PiccoloCache(
            self.onchip_bytes, ways=self.cache_ways,
            fg_tag_bits=self.fg_tag_bits,
        )
        src_w, _ = self.tile_widths(graph)
        windows = ceil_div(src_w * PROP_BYTES, cache.window_bytes)
        cache.set_way_quota(max(1, ceil_div(windows, cache.num_sets)))
        mshr = CollectionExtendedMSHR(
            self.dram.mapper,
            num_entries=self.mshr_entries,
            items_per_op=self.dram_config.fim_items_per_op,
        )
        self.path = FineGrainedMemoryPath(
            cache,
            mshr,
            replay_capacity=self.replay_capacity,
            chunk_size=self.chunk_size,
        )

    def _charge_random_phase(
        self, result, compute_ns, run_fn, **stream_kwargs
    ) -> None:
        """Run ``run_fn`` (memory-path accesses) and charge the phase,
        chunk-streaming the request stream into a PhaseAccumulator when
        phase streaming is on."""
        if self._phase_streaming():
            acc = self.dram.open_phase()
            self.path.phase_sink = acc
            try:
                run_fn()
            finally:
                self.path.phase_sink = None
            fim_ops, addrs, writes = self.path.drain()
            if len(fim_ops) or addrs.size:
                acc.add(
                    addrs=addrs if addrs.size else None,
                    is_write=writes if addrs.size else None,
                    fim_ops=fim_ops if len(fim_ops) else None,
                )
            self._merge_phase(result, compute_ns, acc.close(**stream_kwargs))
            return
        run_fn()
        fim_ops, addrs, writes = self.path.drain()
        self._charge_phase(
            result, compute_ns,
            addrs=addrs if addrs.size else None,
            is_write=writes if addrs.size else None,
            fim_ops=fim_ops,
            **stream_kwargs,
        )

    def _run_iteration(self, trace, result) -> None:
        layout = self.layout
        for block in trace.blocks:
            stream_rd = block.num_edges * EDGE_BYTES
            result.stream_read_bytes += stream_rd
            compute = self.pipeline.compute_ns(block.num_edges, 0)
            result.edges_processed += block.num_edges

            def run_block(block=block):
                self.path.run(layout.vprop_addrs(block.edge_src), rmw=False)
                self.path.run(layout.vtemp_addrs(block.edge_dst), rmw=True)

            self._charge_random_phase(
                result, compute, run_block,
                stream_read_bytes=self.effective_stream_bytes(stream_rd),
            )
        for apply_dst in trace.apply_dst:
            if apply_dst.size == 0:
                continue
            stream_rd = apply_dst.size * PROP_BYTES
            stream_wr = apply_dst.size * PROP_BYTES
            result.stream_read_bytes += stream_rd
            result.stream_write_bytes += stream_wr
            compute = self.pipeline.compute_ns(0, int(apply_dst.size))
            result.vertex_applies += int(apply_dst.size)

            def run_apply(apply_dst=apply_dst):
                self.path.run(layout.vtemp_addrs(apply_dst), rmw=True)

            self._charge_random_phase(
                result, compute, run_apply,
                stream_read_bytes=self.effective_stream_bytes(stream_rd),
                stream_write_bytes=stream_wr,
            )
        pending = self.path.mshr.flush()
        if pending:
            self._charge_phase(result, 0.0, fim_ops=pending)

    def finish(self, result: SystemResult) -> None:
        self.path.flush()
        fim_ops, addrs, writes = self.path.drain()
        if fim_ops or addrs.size:
            self._charge_phase(
                result, 0.0,
                addrs=addrs if addrs.size else None,
                is_write=writes if addrs.size else None,
                fim_ops=fim_ops,
            )
        cache = self.path.cache
        result.cache_hits = cache.stats.hits
        result.cache_misses = cache.stats.misses
        result.cache_accesses = cache.stats.accesses
        result.useful_bytes += (
            result.stream_read_bytes + result.stream_write_bytes
            + cache.stats.fill_bytes + cache.stats.writeback_bytes
        )
