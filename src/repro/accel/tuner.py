"""Exhaustive tile-width tuning (Sec. VII-A: "all baselines employed graph
tiling with the best tile width as determined by an exhaustive search").

The tuner sweeps power-of-two multiples of the perfect tile width and
returns the fastest.  ``probe_iterations`` bounds the per-candidate cost;
the relative ordering of tile widths is stable across iterations because
each iteration repeats the same tile walk.
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph

#: Fig. 17's sweep range (x1 = perfect tiling).
DEFAULT_SCALES = (1, 2, 4, 8, 16)


def tune_tile_scale(
    system_factory,
    graph: CSRGraph,
    algorithm: str,
    scales: tuple[int, ...] = DEFAULT_SCALES,
    probe_iterations: int = 2,
) -> tuple[int, dict[int, float]]:
    """Find the best tile scale for a system on (graph, algorithm).

    Args:
        system_factory: callable ``(tile_scale) -> AcceleratorSystem``;
            a fresh system per candidate keeps cache state independent.
        graph / algorithm: the workload.
        scales: candidate multiples of the perfect tile width.
        probe_iterations: iterations run per candidate.

    Returns:
        ``(best_scale, {scale: total_ns})``.
    """
    if not scales:
        raise ValueError("scales must be non-empty")
    timings: dict[int, float] = {}
    for scale in scales:
        system = system_factory(scale)
        result = system.run(graph, algorithm, max_iterations=probe_iterations)
        timings[scale] = result.total_ns
    best = min(timings, key=timings.get)
    return best, timings
