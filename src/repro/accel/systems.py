"""The six vertex-centric accelerator systems of Fig. 10.

All systems share one skeleton: the functional VCM engine produces
per-tile traces; the system charges the prefetcher streams (topology,
sequential properties, apply streams) and runs the random temporary-
property accesses through its particular on-chip structure; the DRAM
phase evaluator turns the resulting physical requests into time.

See the module docstring of :mod:`repro.accel` for the one-line
characterisation of each system.
"""

from __future__ import annotations

import numpy as np

from repro.accel.base import AcceleratorSystem, SystemResult
from repro.accel.layout import (
    EDGE_BYTES,
    MemoryLayout,
    PROP_BYTES,
    PTR_BYTES,
)
from repro.accel.pipeline import PipelineConfig
from repro.algorithms import make_algorithm
from repro.algorithms.vcm import IterationTrace, TileTrace, VertexCentricEngine
from repro.cache.base import BaseCache
from repro.cache.conventional import ConventionalCache
from repro.core.collection_mshr import CollectionExtendedMSHR
from repro.core.memory_path import ConventionalMemoryPath, FineGrainedMemoryPath
from repro.core.piccolo_cache import PiccoloCache
from repro.dram.spec import DRAMConfig
from repro.graph.csr import CSRGraph
from repro.graph.partition import perfect_tile_width
from repro.utils.units import ceil_div


class _VCMSystem(AcceleratorSystem):
    """Skeleton shared by all vertex-centric systems."""

    #: default multiple of the perfect tile width (1 = perfect tiling)
    default_tile_scale: int = 1
    #: on-chip memory budget in bytes (set per system in __init__)
    onchip_bytes: int = 4096

    def __init__(
        self,
        dram_config: DRAMConfig | None = None,
        pipeline: PipelineConfig | None = None,
        onchip_bytes: int | None = None,
        tile_scale: int | None = None,
        layout: MemoryLayout | None = None,
        chunk_size: int | None = None,
        replay_capacity: int | None = None,
        stream_phase: bool | None = None,
        tile_backing: str = "memory",
        tile_store_root=None,
        tile_bucket_edges: int | None = None,
    ) -> None:
        super().__init__(dram_config, pipeline)
        if onchip_bytes is not None:
            self.onchip_bytes = onchip_bytes
        self.tile_scale = (
            tile_scale if tile_scale is not None else self.default_tile_scale
        )
        self.layout = layout if layout is not None else MemoryLayout()
        #: memory-path knobs (scale-profile driven; None keeps the
        #: module defaults).  SPM/PIM systems have no cached random
        #: path, so they simply ignore them.
        self.chunk_size = chunk_size
        self.replay_capacity = replay_capacity
        #: chunk-streamed DRAM-phase evaluation: each processed memory-
        #: path chunk drains into a PhaseAccumulator instead of piling
        #: up whole-tile request arrays/FIM batches.  None = auto
        #: (enabled whenever tile chunking is on); only systems with a
        #: cached random-access path stream.
        self.stream_phase = stream_phase
        #: tile-array backing ("memory"/"disk") plus the disk store's
        #: root and external-sort chunk size; bit-identical results
        #: either way (see :mod:`repro.graph.tilestore`)
        self.tile_backing = tile_backing
        self.tile_store_root = tile_store_root
        self.tile_bucket_edges = tile_bucket_edges

    # -- hooks ----------------------------------------------------------
    def choose_tile_width(self, graph: CSRGraph) -> int:
        width = perfect_tile_width(graph.num_vertices, self.onchip_bytes)
        return min(graph.num_vertices, width * self.tile_scale)

    def setup(self, graph: CSRGraph, tile_width: int) -> None:
        """Build per-run on-chip state (caches, MSHRs)."""

    def random_access_phase(self, tile: TileTrace, result: SystemResult) -> dict:
        """Run the tile's random accesses; returns keyword arguments for
        :meth:`repro.dram.system.DRAMModel.phase` (addrs, is_write,
        fim_ops, internal_mask, loose_*_bursts)."""
        raise NotImplementedError

    def end_iteration(self, result: SystemResult) -> None:
        """Hook: drain per-iteration state (e.g. MSHR partials)."""

    def finish(self, result: SystemResult) -> None:
        """Hook: final write-back of on-chip dirty state."""

    # -- chunk-streamed phase evaluation ---------------------------------
    # (_phase_path / _phase_streaming live on AcceleratorSystem)
    def _run_random_ids(self, ids: np.ndarray, rmw: bool) -> None:
        """Feed vertex ids through the path, materialising the address
        array per chunk (O(chunk) instead of O(tile) temporaries).  The
        outer split lands on the same chunk boundaries the path would
        use internally, so the produced streams are identical."""
        path = self._phase_path()
        chunk = path.chunk_size
        if chunk is None or ids.size <= chunk:
            path.run(self.layout.vtemp_addrs(ids), rmw=rmw)
            return
        for lo in range(0, ids.size, chunk):
            path.run(self.layout.vtemp_addrs(ids[lo:lo + chunk]), rmw=rmw)

    # -- traffic accounting ----------------------------------------------
    def stream_bytes_for_tile(
        self, tile: TileTrace, n_active: int
    ) -> tuple[float, float]:
        """(read, write) prefetcher stream bytes for one tile pass."""
        reads = (
            n_active * PTR_BYTES               # per-tile row index walk
            + tile.num_edges * EDGE_BYTES      # column indices + weights
            + tile.active_sources * PROP_BYTES  # sequential Vprop[u]
            + tile.apply_dst.size * PROP_BYTES  # apply reads Vprop[v]
        )
        writes = tile.changed_dst.size * PROP_BYTES  # apply writes Vprop[v]
        return float(reads), float(writes)

    # -- main loop --------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        algorithm: str,
        max_iterations: int = 40,
        tile_width: int | None = None,
    ) -> SystemResult:
        spec = make_algorithm(algorithm, graph)
        if tile_width is not None and tile_width < 1:
            raise ValueError(f"tile_width must be >= 1, got {tile_width}")
        width = (
            tile_width if tile_width is not None
            else self.choose_tile_width(graph)
        )
        engine = VertexCentricEngine(
            spec,
            width,
            edge_chunk=self.chunk_size,
            tile_backing=self.tile_backing,
            tile_store_root=self.tile_store_root,
            tile_bucket_edges=self.tile_bucket_edges,
        )
        result = SystemResult(
            system=self.name,
            algorithm=algorithm,
            dataset=graph.name,
            tile_width=width,
            num_tiles=engine.tiled.num_tiles,
            onchip_bytes=self.onchip_bytes,
        )
        result.dram._burst_bytes = self.dram_config.spec.burst_bytes
        self.setup(graph, width)
        for trace in engine.run_iter(max_iterations):
            self._run_iteration(trace, result)
            self.end_iteration(result)
            result.iterations += 1
        self.finish(result)
        return result

    def _run_iteration(self, trace: IterationTrace, result: SystemResult) -> None:
        n_active = trace.active_vertices
        for tile in trace.tiles:
            if (
                n_active == 0
                and tile.num_edges == 0
                and tile.apply_dst.size == 0
            ):
                continue
            stream_rd, stream_wr = self.stream_bytes_for_tile(tile, n_active)
            result.stream_read_bytes += stream_rd
            result.stream_write_bytes += stream_wr
            if self._phase_streaming():
                # chunk-streamed: the memory path drains each processed
                # chunk into the accumulator, so DRAM-phase temporaries
                # stay O(chunk) like the tile stream itself
                acc = self.dram.open_phase()
                path = self._phase_path()
                path.phase_sink = acc
                try:
                    tail_kwargs = self.random_access_phase(tile, result)
                finally:
                    path.phase_sink = None
                if tail_kwargs:
                    acc.add(**tail_kwargs)
                phase = acc.close(
                    stream_read_bytes=self.effective_stream_bytes(stream_rd),
                    stream_write_bytes=stream_wr,
                )
            else:
                phase_kwargs = self.random_access_phase(tile, result)
                phase = self.dram.phase(
                    stream_read_bytes=self.effective_stream_bytes(stream_rd),
                    stream_write_bytes=stream_wr,
                    **phase_kwargs,
                )
            compute = self.pipeline.compute_ns_for_tile(
                tile.edge_dst, int(tile.apply_dst.size)
            )
            result.compute_ns += compute
            result.memory_ns += phase.time_ns
            result.total_ns += max(compute, phase.time_ns)
            phase.time_ns = 0.0  # time already accounted; merge counters
            result.dram.merge(phase)
            result.edges_processed += tile.num_edges
            result.vertex_applies += int(tile.apply_dst.size)
        # Streams are always useful data (topology/property bytes consumed).
        # Random-access usefulness is settled by the caches in finish().

    # -- final accounting -------------------------------------------------
    def settle_useful_bytes(
        self, result: SystemResult, cache: BaseCache | None
    ) -> None:
        result.useful_bytes += result.stream_read_bytes + result.stream_write_bytes
        if cache is None:
            return
        if isinstance(cache, ConventionalCache) and cache.line_bytes > 8:
            result.useful_bytes += cache.useful_fill_bytes + cache.useful_wb_bytes
        else:
            # Fine-grained designs fetch/write only requested words.
            result.useful_bytes += (
                cache.stats.fill_bytes + cache.stats.writeback_bytes
            )
        result.cache_hits = cache.stats.hits
        result.cache_misses = cache.stats.misses
        result.cache_accesses = cache.stats.accesses
        result.random_read_bytes += cache.stats.fill_bytes
        result.random_write_bytes += cache.stats.writeback_bytes


# ---------------------------------------------------------------------------
# Scratchpad baselines
# ---------------------------------------------------------------------------
class GraphicionadoSystem(_VCMSystem):
    """Graphicionado (MICRO'16): scratchpad Vtemp, perfect tiling, and an
    apply sweep over every vertex of the tile regardless of activity."""

    name = "Graphicionado"
    default_tile_scale = 1

    def stream_bytes_for_tile(self, tile, n_active):
        reads = (
            n_active * PTR_BYTES
            + tile.num_edges * EDGE_BYTES
            + tile.active_sources * PROP_BYTES
            + tile.width * PROP_BYTES  # applies the whole tile
        )
        writes = tile.changed_dst.size * PROP_BYTES
        return float(reads), float(writes)

    def random_access_phase(self, tile, result):
        # All random traffic lands in the scratchpad: no DRAM requests.
        return {}

    def _run_iteration(self, trace, result):
        super()._run_iteration(trace, result)
        # The apply sweep also costs compute for untouched vertices.
        extra = sum(t.width - t.apply_dst.size for t in trace.tiles)
        result.compute_ns += extra / self.pipeline.lanes

    def finish(self, result):
        self.settle_useful_bytes(result, None)


class GraphDynsSPMSystem(_VCMSystem):
    """GraphDyns with scratchpad (Sec. VII-A): perfect tiling, sparse apply."""

    name = "GraphDyns (SPM)"
    default_tile_scale = 1

    def random_access_phase(self, tile, result):
        return {}

    def finish(self, result):
        self.settle_useful_bytes(result, None)


# ---------------------------------------------------------------------------
# Cache-based baseline
# ---------------------------------------------------------------------------
class GraphDynsCacheSystem(_VCMSystem):
    """GraphDyns with a conventional 64 B cache for Vtemp (the paper's
    reference baseline; all speedups are normalised to it)."""

    name = "GraphDyns (Cache)"
    default_tile_scale = 2

    def __init__(self, *args, cache_ways: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cache_ways = cache_ways
        self.path: ConventionalMemoryPath | None = None

    def setup(self, graph, tile_width):
        cache = ConventionalCache(
            self.onchip_bytes, ways=self.cache_ways, line_bytes=64
        )
        self.path = ConventionalMemoryPath(
            cache,
            replay_capacity=self.replay_capacity,
            chunk_size=self.chunk_size,
        )

    def random_access_phase(self, tile, result):
        self._run_random_ids(tile.edge_dst, rmw=True)
        if tile.apply_dst.size:
            self._run_random_ids(tile.apply_dst, rmw=True)
        addrs, writes = self.path.drain()
        return {"addrs": addrs, "is_write": writes}

    def finish(self, result):
        self.path.flush()
        addrs, writes = self.path.drain()
        if addrs.size:
            phase = self.dram.phase(addrs=addrs, is_write=writes)
            result.memory_ns += phase.time_ns
            result.total_ns += phase.time_ns
            phase.time_ns = 0.0
            result.dram.merge(phase)
        self.settle_useful_bytes(result, self.path.cache)


# ---------------------------------------------------------------------------
# Fine-grained memory systems (NMP and Piccolo)
# ---------------------------------------------------------------------------
class _FineGrainedSystem(_VCMSystem):
    """Shared logic for systems built on the collection-extended MSHR."""

    rank_level = False
    default_tile_scale = 8

    def __init__(
        self,
        *args,
        cache_ways: int = 8,
        mshr_entries: int = 64,
        fg_tag_bits: int = 4,
        cache_factory=None,
        way_partition: str = "equal",
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if way_partition not in ("equal", "naive"):
            raise ValueError("way_partition must be 'equal' or 'naive'")
        self.cache_ways = cache_ways
        self.mshr_entries = mshr_entries
        self.fg_tag_bits = fg_tag_bits
        self.cache_factory = cache_factory
        self.way_partition = way_partition
        self.path: FineGrainedMemoryPath | None = None

    def make_cache(self) -> BaseCache:
        if self.cache_factory is not None:
            return self.cache_factory(self.onchip_bytes)
        return PiccoloCache(
            self.onchip_bytes,
            ways=self.cache_ways,
            fg_tag_bits=self.fg_tag_bits,
        )

    def setup(self, graph, tile_width):
        cache = self.make_cache()
        if isinstance(cache, PiccoloCache):
            if self.way_partition == "naive":
                # No partitioning: a tag never claims a second way --
                # Sec. V-B's failure mode ("any data covered by a single
                # tag will occupy only up to one way").
                cache.set_way_quota(cache.ways)
            else:
                # Equal way partitioning across the tags the tile spans
                # (Sec. V-B: the tile range pre-identifies the tag list).
                windows = ceil_div(tile_width * PROP_BYTES, cache.window_bytes)
                cache.set_way_quota(max(1, ceil_div(windows, cache.num_sets)))
        mshr = CollectionExtendedMSHR(
            self.dram.mapper,
            num_entries=self.mshr_entries,
            items_per_op=self.dram_config.fim_items_per_op,
            rank_level=self.rank_level,
        )
        self.path = FineGrainedMemoryPath(
            cache,
            mshr,
            replay_capacity=self.replay_capacity,
            chunk_size=self.chunk_size,
        )

    def random_access_phase(self, tile, result):
        self._run_random_ids(tile.edge_dst, rmw=True)
        if tile.apply_dst.size:
            self._run_random_ids(tile.apply_dst, rmw=True)
        fim_ops, addrs, writes = self.path.drain()
        return {"addrs": addrs, "is_write": writes, "fim_ops": fim_ops}

    def end_iteration(self, result):
        # Partially-filled collections are evicted at iteration boundaries.
        pending = self.path.mshr.flush()
        if pending:
            phase = self.dram.phase(fim_ops=pending)
            result.memory_ns += phase.time_ns
            result.total_ns += phase.time_ns
            phase.time_ns = 0.0
            result.dram.merge(phase)

    def finish(self, result):
        self.path.flush()
        fim_ops, addrs, writes = self.path.drain()
        if fim_ops or addrs.size:
            phase = self.dram.phase(
                addrs=addrs if addrs.size else None,
                is_write=writes if addrs.size else None,
                fim_ops=fim_ops,
            )
            result.memory_ns += phase.time_ns
            result.total_ns += phase.time_ns
            phase.time_ns = 0.0
            result.dram.merge(phase)
        self.settle_useful_bytes(result, self.path.cache)
        # FIM offset bursts are protocol overhead, never useful payload.
        result.mshr_ops = self.path.mshr.stats.total_ops
        result.mshr_forwarded = self.path.mshr.stats.forwarded_reads


class NMPSystem(_FineGrainedSystem):
    """Near-memory processing baseline: the buffer chip on the DIMM does
    the scatter/gather, so internal accesses serialise at rank level
    (Sec. VII-A, similar to AxDIMM)."""

    name = "NMP"
    rank_level = True
    default_tile_scale = 4


class PiccoloSystem(_FineGrainedSystem):
    """The full Piccolo system: Piccolo-cache + collection-extended MSHR
    + in-bank FIM scatter/gather."""

    name = "Piccolo"
    rank_level = False
    default_tile_scale = 8


# ---------------------------------------------------------------------------
# PIM baseline
# ---------------------------------------------------------------------------
class PIMSystem(_VCMSystem):
    """Processing-in-memory baseline (similar to GraphPIM): the host
    streams topology and source properties and ships one update command
    per edge; Reduce/Apply execute near-bank.  No cache, no tiling --
    the design cannot exploit on-chip locality (Sec. VII-C)."""

    name = "PIM"

    def choose_tile_width(self, graph):
        return graph.num_vertices  # PIM does not tile

    def random_access_phase(self, tile, result):
        layout = self.layout
        # HMC-style atomic offload: one non-cacheable command burst per
        # edge (bank RMW executes internally) plus a completion response
        # on the return path (bus-only).
        addrs = layout.vtemp_addrs(tile.edge_dst)
        writes = np.ones(addrs.size, dtype=bool)
        result.dram.internal_words += int(addrs.size)  # in-bank RMW
        result.random_write_bytes += addrs.size * 8.0
        # Apply runs near-bank: Vtemp/Vprop reads and writes stay internal.
        result.dram.internal_words += 2 * int(tile.apply_dst.size)
        return {
            "addrs": addrs,
            "is_write": writes,
            "loose_read_bursts": int(addrs.size),  # completion responses
        }

    def stream_bytes_for_tile(self, tile, n_active):
        reads = (
            n_active * PTR_BYTES
            + tile.num_edges * EDGE_BYTES
            + tile.active_sources * PROP_BYTES
        )
        # Apply is executed in memory: no vprop streams cross the bus.
        return float(reads), 0.0

    def finish(self, result):
        self.settle_useful_bytes(result, None)
        # The per-edge command bursts carry 8 useful bytes of 64.
        result.useful_bytes += result.random_write_bytes


SYSTEMS: dict[str, type[_VCMSystem]] = {
    "Graphicionado": GraphicionadoSystem,
    "GraphDyns (SPM)": GraphDynsSPMSystem,
    "GraphDyns (Cache)": GraphDynsCacheSystem,
    "NMP": NMPSystem,
    "PIM": PIMSystem,
    "Piccolo": PiccoloSystem,
}

#: paper ordering of the Fig. 10 bars
SYSTEM_ORDER = (
    "Graphicionado",
    "GraphDyns (SPM)",
    "GraphDyns (Cache)",
    "NMP",
    "PIM",
    "Piccolo",
)


def make_system(name: str, **kwargs) -> _VCMSystem:
    """Instantiate a named system with keyword overrides."""
    try:
        cls = SYSTEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; available: {sorted(SYSTEMS)}"
        ) from None
    return cls(**kwargs)
